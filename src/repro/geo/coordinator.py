"""Geo-distributed ecovisor coordination (paper Section 7, future work).

The paper closes with: "In the future, we plan to enable coordination
between distributed ecovisor clusters to enable geo-distributed
applications", and Section 3.2 sketches the shape — library-level
policies that "shift workload to the site(s) with the lowest
carbon-intensity or most renewable availability".

This module implements that layer for delay-tolerant batch work:

- :class:`SharedWorkPool` — one pool of work units consumable from any
  site (the global job state a geo-distributed framework replicates).
- :class:`GeoWorkerJob` — the per-site application: its workers draw
  from the shared pool; per-site energy/carbon is accounted by that
  site's own ecovisor.
- :class:`GeoCoordinator` — runs several sites' engines in lockstep and
  places the worker pool at the currently cleanest site, paying a
  migration delay (checkpoint transfer) whenever the home site changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.clock import TickInfo
from repro.core.config import ShareConfig
from repro.core.errors import ConfigurationError, SimulationError
from repro.sim.experiment import Environment
from repro.workloads.base import Application


class SharedWorkPool:
    """A global pool of work units consumable from any site."""

    def __init__(self, total_units: float):
        if total_units <= 0:
            raise ValueError(f"total work must be positive, got {total_units}")
        self._total = float(total_units)
        self._consumed = 0.0

    @property
    def total_units(self) -> float:
        return self._total

    @property
    def consumed_units(self) -> float:
        return self._consumed

    @property
    def remaining_units(self) -> float:
        return max(0.0, self._total - self._consumed)

    @property
    def is_complete(self) -> bool:
        return self._consumed >= self._total - 1e-9

    def draw(self, units: float) -> float:
        """Consume up to ``units``; returns the amount actually drawn."""
        if units < 0:
            raise ValueError(f"units must be >= 0, got {units}")
        drawn = min(units, self.remaining_units)
        self._consumed += drawn
        return drawn


class GeoWorkerJob(Application):
    """One site's worker pool, drawing from the shared work pool."""

    def __init__(
        self,
        name: str,
        pool: SharedWorkPool,
        worker_rate_units_per_s: float = 1.0,
    ):
        super().__init__(name)
        if worker_rate_units_per_s <= 0:
            raise ValueError("worker rate must be positive")
        self._pool = pool
        self._rate = worker_rate_units_per_s
        self._units_done_here = 0.0

    @property
    def pool(self) -> SharedWorkPool:
        return self._pool

    @property
    def units_done_here(self) -> float:
        """Work this site contributed (for placement accounting)."""
        return self._units_done_here

    @property
    def is_complete(self) -> bool:
        return self._pool.is_complete

    def step(self, tick: TickInfo, duration_s: float) -> None:
        busy = 0.0 if self._pool.is_complete else 1.0
        for container in self.worker_containers():
            container.set_demand_utilization(busy)

    def finish_tick(
        self, tick: TickInfo, duration_s: float, served_fraction: float
    ) -> None:
        if self._pool.is_complete:
            return
        utils = [c.effective_utilization for c in self.worker_containers()]
        produced = (
            self._rate * sum(utils) * duration_s
            * max(0.0, min(1.0, served_fraction))
        )
        self._units_done_here += self._pool.draw(produced)


@dataclass
class GeoRunResult:
    """Outcome of a geo-coordinated run."""

    completed: bool
    runtime_s: float
    total_carbon_g: float
    carbon_by_site: Dict[str, float]
    work_by_site: Dict[str, float]
    migrations: int


class GeoCoordinator:
    """Places a batch worker pool at the cleanest of several sites.

    Each site is a fully independent ecovisor deployment (its own plant,
    platform, carbon region, and ledger).  The coordinator advances all
    sites' engines in lockstep and, every tick, compares current grid
    carbon-intensity across sites.  When a cleaner site beats the
    current home by at least ``switch_threshold_g_per_kwh``, the pool
    migrates: the old site scales to zero and the new site starts after
    ``migration_delay_ticks`` (checkpoint/state transfer time), during
    which no work happens anywhere.
    """

    def __init__(
        self,
        sites: Dict[str, Environment],
        workers: int = 8,
        cores_per_worker: float = 1.0,
        migration_delay_ticks: int = 5,
        switch_threshold_g_per_kwh: float = 20.0,
    ):
        if len(sites) < 2:
            raise ConfigurationError("geo coordination needs at least two sites")
        if workers <= 0:
            raise ConfigurationError("workers must be positive")
        if migration_delay_ticks < 0:
            raise ConfigurationError("migration delay must be >= 0")
        self._sites = dict(sites)
        self._workers = workers
        self._cores = cores_per_worker
        self._migration_delay_ticks = migration_delay_ticks
        self._switch_threshold = switch_threshold_g_per_kwh
        self._jobs: Dict[str, GeoWorkerJob] = {}
        self._pool: Optional[SharedWorkPool] = None
        self._home: Optional[str] = None
        self._pause_remaining = 0
        self._migrations = 0

    @property
    def migrations(self) -> int:
        return self._migrations

    @property
    def home_site(self) -> Optional[str]:
        return self._home

    def submit(self, total_work_units: float) -> SharedWorkPool:
        """Create the shared pool and register a worker job at every site."""
        if self._pool is not None:
            raise SimulationError("a job is already submitted")
        self._pool = SharedWorkPool(total_work_units)
        for site_name, env in self._sites.items():
            job = GeoWorkerJob(f"geo-{site_name}", self._pool)
            env.engine.add_application(
                job, ShareConfig(grid_power_w=float("inf"))
            )
            self._jobs[site_name] = job
        return self._pool

    def _intensities(self, time_s: float) -> Dict[str, float]:
        return {
            name: env.carbon_service.intensity_at(time_s)
            for name, env in self._sites.items()
        }

    def _choose_home(self, time_s: float) -> str:
        intensities = self._intensities(time_s)
        cleanest = min(intensities, key=lambda n: (intensities[n], n))
        if self._home is None:
            return cleanest
        # Hysteresis: only migrate for a clear win.
        if (
            intensities[self._home] - intensities[cleanest]
            > self._switch_threshold
        ):
            return cleanest
        return self._home

    def _place(self, site_name: str) -> None:
        for name, job in self._jobs.items():
            count = self._workers if name == site_name else 0
            job.api.scale_to(count, self._cores)

    def run(self, max_ticks: int) -> GeoRunResult:
        """Run all sites in lockstep until the pool drains or ticks end."""
        if self._pool is None:
            raise SimulationError("submit() a job before running")
        runtime_s = float("inf")
        for _ in range(max_ticks):
            now_s = next(iter(self._sites.values())).engine.clock.now_s
            if not self._pool.is_complete:
                target = self._choose_home(now_s)
                if target != self._home:
                    if self._home is not None:
                        self._migrations += 1
                        self._pause_remaining = self._migration_delay_ticks
                    self._home = target
                if self._pause_remaining > 0:
                    self._pause_remaining -= 1
                    self._place("<nowhere>")
                else:
                    self._place(self._home)
            else:
                self._place("<nowhere>")
            for env in self._sites.values():
                env.engine.run(1)
            if self._pool.is_complete and runtime_s == float("inf"):
                runtime_s = next(
                    iter(self._sites.values())
                ).engine.clock.now_s
                break
        # Per-site accounting from the apps' finalized per-tick snapshots
        # (the same cumulative ledger figures every other consumer reads).
        carbon_by_site = {
            name: env.ecovisor.state_for(f"geo-{name}").total_carbon_g
            for name, env in self._sites.items()
        }
        return GeoRunResult(
            completed=self._pool.is_complete,
            runtime_s=runtime_s,
            total_carbon_g=sum(carbon_by_site.values()),
            carbon_by_site=carbon_by_site,
            work_by_site={
                name: job.units_done_here for name, job in self._jobs.items()
            },
            migrations=self._migrations,
        )
