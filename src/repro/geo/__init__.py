"""Geo-distributed ecovisor coordination (the paper's stated future work)."""

from repro.geo.coordinator import (
    GeoCoordinator,
    GeoRunResult,
    GeoWorkerJob,
    SharedWorkPool,
)

__all__ = ["GeoCoordinator", "GeoRunResult", "GeoWorkerJob", "SharedWorkPool"]
