"""Built-in scenario catalog: the paper's sweeps as registered scenarios.

Importing this module populates the scenario registry
(:mod:`repro.sim.scenarios`) with the experiment families the figure
benchmarks sweep.  Each run function follows the registry contract:

- module-level (importable by worker processes, picklable by reference);
- takes one parameter dict, builds every simulation object itself;
- returns a flat dict of JSON-serializable scalar metrics;
- deterministic given its parameters (all randomness flows from ``seed``).

Heavyweight imports happen inside the run functions so that importing
the catalog (and therefore ``repro.sim``) stays cheap and cycle-free.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.sim.scenarios import register

# Figure 8/9 constants (mirrors repro.analysis.figures_battery).
GEO_WORK_UNITS = 8 * 60.0 * 600  # ~10 h of work for 8 geo workers
GEO_MAX_TICKS = 2 * 24 * 60
THRESHOLD_WINDOW_S = 48 * 3600.0  # Section 5.1 lookahead window


@register(
    "smoke",
    description=(
        "Tiny grid-only run (one day trace, a small ML job, a carbon-"
        "agnostic policy) used by CI and the runner self-tests. "
        "fail=1 raises inside the run to exercise failure isolation."
    ),
    defaults={"seed": 2023, "ticks": 40, "fail": 0},
    sweep={"workers": (2, 4)},
    tags=("ci", "fast"),
)
def run_smoke(params: Dict[str, Any]) -> Dict[str, Any]:
    """A seconds-scale end-to-end run returning energy/carbon totals."""
    if params["fail"]:
        raise RuntimeError("injected smoke-scenario failure (fail=1)")
    from repro.carbon.traces import make_region_trace
    from repro.core.config import ShareConfig
    from repro.policies import CarbonAgnosticPolicy
    from repro.sim.experiment import grid_environment
    from repro.workloads.mltrain import MLTrainingJob

    trace = make_region_trace("caiso", days=1, seed=int(params["seed"]))
    env = grid_environment(trace=trace)
    job = MLTrainingJob(total_work_units=1200.0)
    env.engine.add_application(
        job,
        ShareConfig(grid_power_w=float("inf")),
        CarbonAgnosticPolicy(workers=int(params["workers"])),
    )
    executed = env.engine.run(int(params["ticks"]), stop_when_batch_complete=True)
    account = env.ecovisor.ledger.account(job.name)
    return {
        "ticks_executed": float(executed),
        "progress_units": float(job.progress_units),
        "energy_wh": float(account.energy_wh),
        "carbon_g": float(account.carbon_g),
        "completed": 1.0 if job.is_complete else 0.0,
    }


@register(
    "fig08_battery_policies",
    description=(
        "Figures 8-9: static system policy vs application-specific "
        "dynamic policies for two zero-carbon tenants sharing a solar "
        "array and physical battery 50/50 (paper Section 5.3)."
    ),
    defaults={"seed": 2023},
    sweep={"policy": ("static", "dynamic")},
    tags=("figure",),
)
def run_fig08_battery_policies(params: Dict[str, Any]) -> Dict[str, Any]:
    """One battery-policy run; see ``run_battery_policy_case``."""
    from repro.analysis.figures_battery import run_battery_policy_case

    return run_battery_policy_case(str(params["policy"]), int(params["seed"]))


@register(
    "fig05_multitenancy",
    description=(
        "Figure 5: ML training (W&S 2x) and BLAST (W&S 3x) sharing one "
        "ecovisor, each suspending and scaling against its own carbon "
        "threshold on the same physical cluster (paper Section 5.1.3)."
    ),
    defaults={"seed": 2023, "days": 2},
    tags=("figure",),
)
def run_fig05_multitenancy(params: Dict[str, Any]) -> Dict[str, Any]:
    """One multi-tenant run; see ``run_multitenancy_case``."""
    from repro.analysis.figures_batch import run_multitenancy_case

    return run_multitenancy_case(int(params["days"]), int(params["seed"]))


@register(
    "fig10_solar_caps",
    description=(
        "Figure 10(c): static vs dynamic per-container power caps for a "
        "barrier-synchronized job on solar only, swept over available "
        "solar power (paper Section 5.4)."
    ),
    defaults={"seed": 2023},
    sweep={
        "solar_pct": (10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0),
        "policy": ("static", "dynamic"),
    },
    tags=("figure",),
)
def run_fig10_solar_caps(params: Dict[str, Any]) -> Dict[str, Any]:
    """One (solar %, cap policy) run; see ``run_solar_cap_case``."""
    from repro.analysis.figures_solar import run_solar_cap_case

    return run_solar_cap_case(
        float(params["solar_pct"]), str(params["policy"]), int(params["seed"])
    )


@register(
    "fig11_stragglers",
    description=(
        "Figure 11: replica-based straggler mitigation under excess "
        "solar (100-200% of the job's maximum draw) — replicas enabled "
        "vs disabled at each solar percentage (paper Section 5.4)."
    ),
    defaults={"seed": 2023},
    sweep={
        "solar_pct": (
            100.0, 110.0, 120.0, 130.0, 140.0, 150.0,
            160.0, 170.0, 180.0, 190.0, 200.0,
        ),
        "policy": ("no-replicas", "replicas"),
    },
    tags=("figure",),
)
def run_fig11_stragglers(params: Dict[str, Any]) -> Dict[str, Any]:
    """One (solar %, replica policy) run; see ``run_straggler_case``."""
    from repro.analysis.figures_solar import run_straggler_case

    return run_straggler_case(
        float(params["solar_pct"]), str(params["policy"]), int(params["seed"])
    )


@register(
    "ablation_threshold",
    description=(
        "Ablation: sensitivity of the suspend/resume carbon threshold "
        "to its percentile (the paper fixes the 30th percentile for ML "
        "training; this sweeps the carbon-vs-runtime tradeoff)."
    ),
    defaults={"seed": 2023, "reps": 6, "days": 4},
    sweep={"percentile": (20.0, 30.0, 40.0, 50.0)},
    tags=("ablation",),
)
def run_ablation_threshold(params: Dict[str, Any]) -> Dict[str, Any]:
    """Repeated W&S(2x) ML-training runs at one threshold percentile."""
    from repro.carbon.traces import make_region_trace
    from repro.policies import WaitAndScalePolicy
    from repro.sim.experiment import (
        arrival_offsets,
        carbon_threshold,
        run_batch_policy,
    )
    from repro.sim.results import summarize_batch
    from repro.workloads.mltrain import MLTrainingJob

    percentile = float(params["percentile"])
    days = int(params["days"])
    trace = make_region_trace("caiso", days=days, seed=int(params["seed"]))
    offsets = arrival_offsets(int(params["reps"]), trace.duration_s)
    threshold = carbon_threshold(trace, percentile, THRESHOLD_WINDOW_S)
    summary = summarize_batch(
        run_batch_policy(
            make_app=lambda: MLTrainingJob(total_work_units=29000.0),
            make_policy=lambda t, thr=threshold: WaitAndScalePolicy(thr, 4, 2.0),
            policy_label=f"p{percentile:.0f}",
            base_trace=trace,
            offsets=offsets,
            max_ticks=days * 24 * 60,
        )
    )
    return {
        "threshold_g_per_kwh": float(threshold),
        "mean_runtime_s": summary.mean_runtime_s,
        "std_runtime_s": summary.std_runtime_s,
        "mean_carbon_g": summary.mean_carbon_g,
        "std_carbon_g": summary.std_carbon_g,
        "mean_energy_wh": summary.mean_energy_wh,
        "completion_rate": summary.completion_rate,
    }


@register(
    "ablation_battery",
    description=(
        "Ablation: battery one-way efficiency x depth-of-discharge "
        "floor — how much solar-shifted energy a zero-carbon "
        "application actually recovers (DESIGN.md Section 5)."
    ),
    defaults={"seed": 2023, "days": 3},
    sweep={"efficiency": (1.0, 0.95, 0.85), "floor": (0.0, 0.30)},
    tags=("ablation",),
)
def run_ablation_battery(params: Dict[str, Any]) -> Dict[str, Any]:
    """One solar+battery-only Spark run at one (efficiency, floor) point.

    Sized so the battery binds: a 6-worker pool outdraws the morning and
    evening solar shoulders, so recovered battery energy (and therefore
    efficiency and the DoD floor) directly limits work done.
    """
    from repro.carbon.service import CarbonIntensityService
    from repro.carbon.traces import constant_trace
    from repro.cluster.cop import ContainerOrchestrationPlatform
    from repro.core.clock import SimulationClock
    from repro.core.config import (
        BatteryConfig,
        CarbonServiceConfig,
        ClusterConfig,
        EcovisorConfig,
        ShareConfig,
        SolarConfig,
    )
    from repro.core.ecovisor import Ecovisor
    from repro.energy.battery import Battery
    from repro.energy.solar import SolarArrayEmulator, SolarTrace
    from repro.energy.system import PhysicalEnergySystem
    from repro.policies import StaticBatterySmoothingPolicy
    from repro.sim.engine import SimulationEngine
    from repro.workloads.spark import SparkJob

    efficiency = float(params["efficiency"])
    floor = float(params["floor"])
    days = int(params["days"])
    battery = Battery(
        BatteryConfig(
            capacity_wh=15.0,
            empty_soc_fraction=floor,
            charge_efficiency=efficiency,
            discharge_efficiency=efficiency,
            initial_soc_fraction=max(0.5, floor + 0.2),
        )
    )
    solar = SolarArrayEmulator(
        SolarConfig(peak_power_w=14.0),
        SolarTrace(days=days, seed=int(params["seed"])),
    )
    plant = PhysicalEnergySystem(battery=battery, solar=solar)
    platform = ContainerOrchestrationPlatform(ClusterConfig(num_servers=8))
    carbon = CarbonIntensityService(
        CarbonServiceConfig(region="constant"),
        trace=constant_trace(200.0, days=days),
    )
    ecovisor = Ecovisor(plant, platform, carbon, EcovisorConfig())
    engine = SimulationEngine(ecovisor, SimulationClock(60.0))
    job = SparkJob(name="spark", total_work_units=1e9)
    policy = StaticBatterySmoothingPolicy(6, 1.25)
    engine.add_application(
        job,
        ShareConfig(solar_fraction=1.0, battery_fraction=1.0, grid_power_w=0.0),
        policy,
    )
    engine.run(days * 24 * 60)
    account = ecovisor.ledger.account("spark")
    return {
        "progress_units": float(job.progress_units),
        "battery_wh": float(account.battery_wh),
        "solar_wh": float(account.solar_wh),
        "curtailed_wh": float(account.curtailed_wh),
    }


@register(
    "extension_market",
    description=(
        "Extension (market layer): carbon-vs-cost Pareto frontier. "
        "Sweeps electricity-price regimes (flat tariff, time-of-use, "
        "CAISO-like real-time) x wait-and-scale policies (carbon "
        "threshold, price threshold, blended carbon+cost) x the "
        "trade-off knob lambda; every run bills grid energy at the "
        "tick price through the settlement path."
    ),
    defaults={
        "seed": 2023,
        "days": 2,
        "work_units": 24000.0,
        "percentile": 35.0,
    },
    sweep={
        "regime": ("flat", "tou", "realtime"),
        "policy": ("carbon-threshold", "price-threshold", "carbon-cost"),
        "lam": (0.0, 0.5, 1.0),
    },
    tags=("extension", "market"),
)
def run_extension_market(params: Dict[str, Any]) -> Dict[str, Any]:
    """One (regime, policy, lambda) run; see ``run_market_case``."""
    from repro.analysis.figures_market import run_market_case

    return run_market_case(
        str(params["regime"]),
        str(params["policy"]),
        float(params["lam"]),
        seed=int(params["seed"]),
        days=int(params["days"]),
        work_units=float(params["work_units"]),
        percentile=float(params["percentile"]),
    )


@register(
    "regional",
    description=(
        "Regional grids (provider registry): the same policy grid run "
        "across bundled historical carbon datasets (CAISO, Ontario, "
        "Germany) with registry-resolved on-site generation (solar or "
        "wind+solar capacity-factor datasets) and day-ahead prices "
        "attached.  Fully offline; dataset checksums join the sweep "
        "provenance."
    ),
    defaults={
        "seed": 2023,
        "days": 2,
        "work_units": 200000.0,
        "percentile": 35.0,
    },
    sweep={
        "region": ("caiso-2022", "ontario-2022", "germany-2022"),
        "policy": ("agnostic", "wait-and-scale", "suspend-resume"),
        "generation": ("solar", "wind+solar"),
    },
    tags=("extension", "regional", "providers"),
)
def run_regional(params: Dict[str, Any]) -> Dict[str, Any]:
    """One (region, policy, generation) run; see ``run_regional_case``."""
    from repro.analysis.figures_regional import run_regional_case

    return run_regional_case(
        str(params["region"]),
        str(params["policy"]),
        str(params["generation"]),
        seed=int(params["seed"]),
        days=int(params["days"]),
        work_units=float(params["work_units"]),
        percentile=float(params["percentile"]),
    )


@register(
    "fleet_small",
    description=(
        "Fleet scale (50 tenants): mixed ML/Spark workloads under a "
        "mixed policy assignment on one ecovisor with solar, battery, "
        "and a real-time price signal.  The hot-path scenario family "
        "behind benchmarks/bench_scale.py; all randomness derives from "
        "config_digest of the parameters (see repro.sim.fleet)."
    ),
    defaults={"seed": 2023, "apps": 50, "ticks": 240, "mix": "balanced"},
    tags=("fleet", "scale"),
)
def run_fleet_small(params: Dict[str, Any]) -> Dict[str, Any]:
    """One 50-app fleet run; see :func:`repro.sim.fleet.run_fleet`."""
    from repro.sim.fleet import run_fleet

    return run_fleet(params)


@register(
    "fleet_medium",
    description=(
        "Fleet scale (200 tenants): the committed perf-baseline "
        "scenario — bench_scale.py measures tick-loop throughput on "
        "this population and CI gates on regressions against "
        "benchmarks/BENCH_scale.json."
    ),
    defaults={"seed": 2023, "apps": 200, "ticks": 120, "mix": "balanced"},
    tags=("fleet", "scale"),
)
def run_fleet_medium(params: Dict[str, Any]) -> Dict[str, Any]:
    """One 200-app fleet run; see :func:`repro.sim.fleet.run_fleet`."""
    from repro.sim.fleet import run_fleet

    return run_fleet(params)


@register(
    "fleet_large",
    description=(
        "Fleet scale (1000 tenants): the stress end of the family; "
        "nightly CI tracks its throughput trend."
    ),
    defaults={"seed": 2023, "apps": 1000, "ticks": 60, "mix": "balanced"},
    tags=("fleet", "scale"),
)
def run_fleet_large(params: Dict[str, Any]) -> Dict[str, Any]:
    """One 1000-app fleet run; see :func:`repro.sim.fleet.run_fleet`."""
    from repro.sim.fleet import run_fleet

    return run_fleet(params)


@register(
    "fleet_churn",
    description=(
        "Dynamic tenancy (control plane v1.1): a static fleet plus "
        "Poisson tenant arrivals/departures and mid-run share "
        "rebalances, all scheduled deterministically from config_digest "
        "of the parameters (see repro.sim.fleet.build_churn_fleet). "
        "Metrics span evicted tenants' finalized accounts, so the "
        "sweep pins the whole lifecycle path."
    ),
    defaults={
        "seed": 2023,
        "apps": 40,
        "ticks": 120,
        "mix": "balanced",
        "admit_rate": 0.4,
        "evict_rate": 0.3,
    },
    tags=("fleet", "scale", "churn"),
)
def run_fleet_churn(params: Dict[str, Any]) -> Dict[str, Any]:
    """One churn fleet run; see :func:`repro.sim.fleet.run_fleet_churn`."""
    from repro.sim.fleet import run_fleet_churn

    return run_fleet_churn(params)


@register(
    "extension_geo",
    description=(
        "Extension (paper Section 7): geo-distributed coordination of "
        "two ecovisor sites with anti-correlated carbon, vs pinning the "
        "worker pool to either single site."
    ),
    defaults={"seed": 2023, "work_units": GEO_WORK_UNITS, "max_ticks": GEO_MAX_TICKS},
    sweep={"placement": ("geo-shifting", "east-only", "west-only")},
    tags=("extension",),
)
def run_extension_geo(params: Dict[str, Any]) -> Dict[str, Any]:
    """One placement strategy for the shared geo work pool."""
    from repro.carbon.traces import make_region_trace
    from repro.geo import GeoCoordinator
    from repro.sim.experiment import grid_environment

    base = make_region_trace("caiso", days=3, seed=int(params["seed"]))
    shifted = base.rolled(12 * 3600.0)  # out-of-phase duck curves
    placement = str(params["placement"])
    if placement == "geo-shifting":
        geo = GeoCoordinator(
            {
                "east": grid_environment(trace=base),
                "west": grid_environment(trace=shifted),
            },
            workers=8,
            migration_delay_ticks=5,
        )
    elif placement in ("east-only", "west-only"):
        trace = base if placement == "east-only" else shifted
        geo = GeoCoordinator(
            {
                "east": grid_environment(trace=trace),
                "west": grid_environment(trace=trace.rolled(1.0)),
            },
            workers=8,
            switch_threshold_g_per_kwh=1e9,  # never migrate
        )
    else:
        raise ValueError(f"unknown placement: {placement!r}")
    geo.submit(float(params["work_units"]))
    result = geo.run(int(params["max_ticks"]))
    return {
        "runtime_s": float(result.runtime_s),
        "carbon_g": float(result.total_carbon_g),
        "migrations": float(result.migrations),
        "completed": 1.0 if result.completed else 0.0,
        "work_east": float(result.work_by_site.get("east", 0.0)),
        "work_west": float(result.work_by_site.get("west", 0.0)),
    }
