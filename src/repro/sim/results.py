"""Result records and summaries for experiment runs.

The paper reports batch results as (carbon emissions, completion time)
pairs with standard deviations over ten runs (Figure 4), and service
results as latency/SLO time series plus total emissions (Figures 6-8).
These dataclasses are the printable/testable form of those outputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.units import SECONDS_PER_HOUR


@dataclass(frozen=True)
class BatchRunResult:
    """One batch-job run under one policy."""

    policy_label: str
    arrival_offset_s: float
    runtime_s: float
    carbon_g: float
    energy_wh: float
    completed: bool

    @property
    def runtime_hours(self) -> float:
        return self.runtime_s / SECONDS_PER_HOUR


@dataclass(frozen=True)
class BatchSummary:
    """Mean/std across repeated runs of one policy (a Figure 4 bar)."""

    policy_label: str
    runs: int
    mean_runtime_s: float
    std_runtime_s: float
    mean_carbon_g: float
    std_carbon_g: float
    mean_energy_wh: float
    completion_rate: float

    @property
    def mean_runtime_hours(self) -> float:
        return self.mean_runtime_s / SECONDS_PER_HOUR

    def runtime_ratio_vs(self, other: "BatchSummary") -> float:
        """This policy's runtime as a multiple of ``other``'s."""
        if other.mean_runtime_s <= 0:
            return math.inf
        return self.mean_runtime_s / other.mean_runtime_s

    def carbon_change_vs(self, other: "BatchSummary") -> float:
        """Relative carbon change vs ``other`` (negative = reduction)."""
        if other.mean_carbon_g <= 0:
            return math.inf
        return (self.mean_carbon_g - other.mean_carbon_g) / other.mean_carbon_g


def summarize_batch(results: Sequence[BatchRunResult]) -> BatchSummary:
    """Aggregate repeated runs of one policy into a summary row."""
    if not results:
        raise ValueError("cannot summarize an empty result list")
    labels = {r.policy_label for r in results}
    if len(labels) != 1:
        raise ValueError(f"mixed policy labels in one summary: {sorted(labels)}")
    runtimes = [r.runtime_s for r in results]
    carbons = [r.carbon_g for r in results]
    energies = [r.energy_wh for r in results]
    n = len(results)
    return BatchSummary(
        policy_label=results[0].policy_label,
        runs=n,
        mean_runtime_s=_mean(runtimes),
        std_runtime_s=_std(runtimes),
        mean_carbon_g=_mean(carbons),
        std_carbon_g=_std(carbons),
        mean_energy_wh=_mean(energies),
        completion_rate=sum(1.0 for r in results if r.completed) / n,
    )


@dataclass(frozen=True)
class ServiceRunResult:
    """One web-service run under one policy (a Figure 6 line)."""

    policy_label: str
    app_name: str
    slo_ms: float
    ticks: int
    violation_ticks: int
    mean_p95_ms: float
    worst_p95_ms: float
    carbon_g: float
    energy_wh: float

    @property
    def violation_fraction(self) -> float:
        if self.ticks == 0:
            return 0.0
        return self.violation_ticks / self.ticks

    @property
    def met_slo_always(self) -> bool:
        return self.violation_ticks == 0


@dataclass
class SeriesBundle:
    """Named (times, values) series extracted from the telemetry DB.

    The per-figure builders in :mod:`repro.analysis.figures` return these
    so benches can print the same rows/series the paper plots.
    """

    title: str
    series: Dict[str, List[tuple]] = field(default_factory=dict)

    def add(self, name: str, times: Sequence[float], values: Sequence[float]) -> None:
        self.series[name] = list(zip(times, values))

    def names(self) -> List[str]:
        return sorted(self.series)

    def __len__(self) -> int:
        return len(self.series)


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def _std(values: Sequence[float]) -> float:
    if len(values) < 2:
        return 0.0
    mu = _mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))
