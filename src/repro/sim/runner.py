"""Parallel experiment runner for registered scenarios.

Executes the scenario matrices produced by :mod:`repro.sim.scenarios`
across worker processes (``concurrent.futures.ProcessPoolExecutor``),
with a serial fallback used for determinism tests and debugging.  One
sweep yields one :class:`SweepResult` — a tidy results table with
per-scenario provenance (seed, config hash, wall time, worker pid).

Guarantees:

- **Determinism** — ``SweepResult.table()`` and ``metrics_json()`` are
  byte-identical between serial (``jobs<=1``) and parallel (``jobs>=2``)
  execution of the same specs: rows are ordered by spec index, and
  volatile provenance (wall time, pid) is excluded from the table.
- **Failure isolation** — an exception inside one scenario run is caught
  *inside the worker* and recorded as a failed row; it never kills the
  sweep or the other runs.  A worker process dying outright (e.g. OOM)
  is coarser: the executor marks the rows in flight on the broken pool
  as failed (``"worker failed: ..."``) but the sweep still returns a
  complete table rather than raising.
- **Pickling constraints** — only :class:`~repro.sim.scenarios.ScenarioSpec`
  (plain names + parameter values) and flat metric dicts cross process
  boundaries; simulation objects are always built inside the worker by
  the scenario's run function.
"""

from __future__ import annotations

import concurrent.futures
import csv
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.sim.scenarios import ScenarioSpec, expand, get

#: Provenance columns leading every written table, in this order.
_PROVENANCE_COLUMNS = ("scenario", "index", "config_hash", "status", "error")

#: Environment variable consulted by :func:`default_jobs`.
JOBS_ENV_VAR = "REPRO_SWEEP_JOBS"


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one scenario run, successful or failed.

    ``metrics`` is the run function's flat metric dict (empty on
    failure); ``error`` is ``"ExceptionType: message"`` on failure.
    ``wall_time_s`` and ``worker_pid`` are provenance only — they vary
    between runs and are deliberately excluded from the deterministic
    table.
    """

    spec: ScenarioSpec
    status: str  # "ok" | "error"
    metrics: Dict[str, Any] = field(default_factory=dict)
    error: str = ""
    wall_time_s: float = 0.0
    worker_pid: int = 0

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class SweepResult:
    """An ordered collection of :class:`ScenarioResult` rows for one sweep."""

    def __init__(self, scenario: str, results: Sequence[ScenarioResult], jobs: int):
        self.scenario = scenario
        self.results: List[ScenarioResult] = sorted(
            results, key=lambda r: r.spec.index
        )
        self.jobs = jobs

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def failures(self) -> List[ScenarioResult]:
        """The failed rows (empty when the whole sweep succeeded)."""
        return [r for r in self.results if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failures()

    def table(self) -> List[Dict[str, Any]]:
        """The tidy results table: one flat dict per run, in matrix order.

        Each row carries provenance columns (``scenario``, ``index``,
        ``config_hash``, ``status``, ``error``), then the run's
        parameters, then its metrics.  Parameter and metric names are
        assumed disjoint (the catalog keeps them so).  The table is
        deterministic: identical for serial and parallel execution.
        """
        rows = []
        for result in self.results:
            row: Dict[str, Any] = {
                "scenario": result.spec.scenario,
                "index": result.spec.index,
                "config_hash": result.spec.config_hash,
                "status": result.status,
                "error": result.error,
            }
            row.update(result.spec.params)
            row.update(result.metrics)
            rows.append(row)
        return rows

    def metrics_json(self) -> str:
        """Canonical JSON of :meth:`table` — byte-comparable across runs."""
        return json.dumps(self.table(), sort_keys=True, separators=(",", ":"))

    def rows_ok(self) -> List[Dict[str, Any]]:
        """The table restricted to successful rows."""
        return [row for row in self.table() if row["status"] == "ok"]

    def write(self, path: str | Path) -> Path:
        """Persist :meth:`table` to ``path``; the extension picks the format.

        ``.csv`` writes a CSV whose columns are the provenance columns
        followed by the sorted union of parameter/metric names across all
        rows (failed rows leave their metric cells empty); anything else
        writes the canonical JSON of :meth:`metrics_json`.  Both formats
        are deterministic — byte-identical between serial and parallel
        executions of the same specs — so CI can diff or cache artifacts.
        Returns the written path.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        rows = self.table()
        if path.suffix.lower() == ".csv":
            extras = sorted(
                {key for row in rows for key in row} - set(_PROVENANCE_COLUMNS)
            )
            columns = [*_PROVENANCE_COLUMNS, *extras]
            with path.open("w", newline="") as handle:
                writer = csv.DictWriter(handle, fieldnames=columns, restval="")
                writer.writeheader()
                writer.writerows(rows)
        else:
            path.write_text(self.metrics_json() + "\n")
        return path

    def total_wall_time_s(self) -> float:
        """Sum of per-run wall times (CPU cost, not elapsed sweep time)."""
        return sum(r.wall_time_s for r in self.results)


def _ensure_catalog() -> None:
    """Make sure the built-in scenarios are registered in this process.

    Worker processes started with the ``spawn`` method import this module
    fresh; the catalog import is what (re)populates the registry there.
    """
    import repro.sim.catalog  # noqa: F401  (import registers built-ins)


def execute_spec(spec: ScenarioSpec) -> ScenarioResult:
    """Run one spec in the current process, isolating any failure.

    This is the function submitted to worker processes.  Exceptions from
    the scenario's run function are converted into an ``"error"`` row
    rather than propagated, so one crashing scenario cannot kill a sweep.
    """
    _ensure_catalog()
    started = time.perf_counter()
    try:
        scenario = get(spec.scenario)
        metrics = scenario.run(dict(spec.params))
        if not isinstance(metrics, dict):
            raise TypeError(
                f"scenario {spec.scenario!r} returned "
                f"{type(metrics).__name__}, expected a metrics dict"
            )
        return ScenarioResult(
            spec=spec,
            status="ok",
            metrics=metrics,
            wall_time_s=time.perf_counter() - started,
            worker_pid=os.getpid(),
        )
    except Exception as exc:  # noqa: BLE001 — failure isolation by design
        return ScenarioResult(
            spec=spec,
            status="error",
            error=f"{type(exc).__name__}: {exc}",
            wall_time_s=time.perf_counter() - started,
            worker_pid=os.getpid(),
        )


def run_specs(
    specs: Sequence[ScenarioSpec], jobs: int = 1, scenario: str = ""
) -> SweepResult:
    """Execute a list of specs, serially or across worker processes.

    ``jobs <= 1`` runs in-process (the serial fallback — deterministic
    and debugger-friendly); ``jobs >= 2`` fans out over a process pool.
    Results are returned in spec-index order either way.
    """
    name = scenario or (specs[0].scenario if specs else "")
    if jobs <= 1 or len(specs) <= 1:
        # Serial fallback (also for single-spec sweeps, where a pool
        # buys nothing); report jobs=1 so consumers see the real mode.
        return SweepResult(name, [execute_spec(s) for s in specs], jobs=1)
    results: List[ScenarioResult] = []
    max_workers = min(jobs, len(specs))
    with concurrent.futures.ProcessPoolExecutor(max_workers=max_workers) as pool:
        futures = {pool.submit(execute_spec, spec): spec for spec in specs}
        for future in concurrent.futures.as_completed(futures):
            spec = futures[future]
            try:
                results.append(future.result())
            except Exception as exc:  # worker process died (not a run error)
                results.append(
                    ScenarioResult(
                        spec=spec,
                        status="error",
                        error=f"worker failed: {type(exc).__name__}: {exc}",
                    )
                )
    return SweepResult(name, results, jobs=jobs)


def run_sweep(
    scenario: str,
    overrides: Optional[Mapping[str, Any]] = None,
    jobs: int = 1,
) -> SweepResult:
    """Expand a registered scenario and execute its matrix.

    ``overrides`` follow :func:`repro.sim.scenarios.expand` semantics:
    scalars pin a parameter, lists/tuples (re)define a sweep axis.
    """
    _ensure_catalog()
    specs = expand(scenario, overrides)
    return run_specs(specs, jobs=jobs, scenario=scenario)


def default_jobs() -> int:
    """Worker count for benchmarks: ``$REPRO_SWEEP_JOBS`` or min(4, cpus)."""
    env = os.environ.get(JOBS_ENV_VAR)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return min(4, os.cpu_count() or 1)
