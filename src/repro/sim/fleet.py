"""Fleet-scale scenario family: many small tenants on one ecovisor.

The paper's evaluation multiplexes a handful of applications; the
ROADMAP north star is a virtualization layer that stays cheap under
*fleet-scale* tenant counts (hundreds to a thousand applications per
ecovisor, the regime "Enabling Sustainable Clouds" frames as
per-application energy multiplexing).  This module builds those
fleets deterministically:

- ``build_fleet(params)`` wires one ecovisor + engine with ``apps``
  registered applications, a mixed workload population (ML training and
  Spark batch jobs of varying sizes) and a mixed policy assignment
  (carbon-agnostic, Wait&Scale, suspend/resume), with a subset of
  tenants holding solar and battery shares and a real-time price signal
  attached so the full settlement/billing path is exercised.
- ``run_fleet(params)`` runs the fleet for ``ticks`` and returns the
  flat metric dict the scenario registry expects.

Determinism contract (the runner executes fleets across worker
processes): **every random choice flows from the spec parameters via
``config_digest``** — the per-fleet root seed is the SHA-256 digest of
the parameter dict, and each application derives its own child RNG from
``(root_seed, app_index)``.  Two processes expanding the same spec
therefore build bit-identical fleets, which is what makes
``repro sweep fleet_* --jobs N`` byte-identical serial vs parallel.

The registered scenarios (see :mod:`repro.sim.catalog`) are
``fleet_small`` (50 apps), ``fleet_medium`` (200 apps, the committed
perf-baseline scenario of ``benchmarks/bench_scale.py``), ``fleet_large``
(1000 apps), and ``fleet_churn`` — a dynamic-tenancy fleet where, on top
of the static population, tenants arrive and depart mid-run on a
digest-seeded Poisson schedule (``build_churn_fleet``), exercising the
control plane's ``admit_app``/``set_share``/``evict_app`` path at scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Tuple

from repro.core.config import config_digest

#: Policy mixes: relative weights of (agnostic, wait-and-scale,
#: suspend-resume) in the tenant population.
POLICY_MIXES: Dict[str, tuple] = {
    "balanced": (1.0, 1.0, 1.0),
    "carbon": (1.0, 2.0, 2.0),
    "agnostic": (1.0, 0.0, 0.0),
}

#: Every third tenant holds a solar + battery share (the others are
#: grid-only), so both the battery and the zero-battery snapshot paths
#: stay hot in every fleet.
SHARED_PLANT_STRIDE = 3

#: The parameters that define a fleet's population.  The root seed is
#: derived from exactly these, so harness-only knobs (the benchmark's
#: ``batched`` toggle) never change which fleet gets built.
FLEET_PARAM_KEYS = ("apps", "mix", "seed", "ticks")


@dataclass
class FleetEnvironment:
    """One fully wired fleet, plus the handles benchmarks need."""

    engine: Any
    ecovisor: Any
    applications: List[Any]
    num_containers: int


def fleet_root_seed(params: Mapping[str, Any]) -> int:
    """The fleet's root RNG seed: the digest of its full parameter dict.

    Using ``config_digest`` (SHA-256 over canonical JSON) rather than
    ``hash()`` or an ad-hoc combination means the seed is stable across
    processes and Python versions — the property the serial-vs-parallel
    sweep parity of the fleet family rests on.
    """
    population = {k: params[k] for k in FLEET_PARAM_KEYS if k in params}
    return int(config_digest(population, length=16), 16)


def build_fleet(params: Mapping[str, Any]) -> FleetEnvironment:
    """Construct a fleet engine from plain parameters (worker-safe)."""
    from repro.carbon.traces import make_region_trace
    from repro.core.config import (
        BatteryConfig,
        ClusterConfig,
        ServerConfig,
        ShareConfig,
        SolarConfig,
    )
    from repro.energy.battery import Battery
    from repro.energy.grid import GridConnection
    from repro.energy.solar import SolarArrayEmulator, SolarTrace
    from repro.energy.system import PhysicalEnergySystem
    from repro.market.prices import make_price_trace
    from repro.policies import (
        CarbonAgnosticPolicy,
        SuspendResumePolicy,
        WaitAndScalePolicy,
    )
    from repro.sim.experiment import _wire
    from repro.workloads.mltrain import MLTrainingJob
    from repro.workloads.spark import SparkJob

    import numpy as np

    num_apps = int(params["apps"])
    ticks = int(params["ticks"])
    mix = str(params.get("mix", "balanced"))
    if num_apps <= 0:
        raise ValueError(f"apps must be positive, got {num_apps}")
    if mix not in POLICY_MIXES:
        known = ", ".join(sorted(POLICY_MIXES))
        raise ValueError(f"unknown policy mix {mix!r}; known mixes: {known}")
    root_seed = fleet_root_seed(params)
    trace_seed = int(params.get("seed", 2023))
    days = max(1, math.ceil(ticks * 60.0 / 86400.0))

    trace = make_region_trace("caiso", days=days, seed=trace_seed)
    price_trace = make_price_trace("realtime", days=days, seed=trace_seed)
    solar = SolarArrayEmulator(
        SolarConfig(peak_power_w=max(4.0 * num_apps, 10.0)),
        SolarTrace(days=days, seed=trace_seed),
    )
    battery = Battery(BatteryConfig(capacity_wh=max(10.0 * num_apps, 50.0)))
    plant = PhysicalEnergySystem(
        grid=GridConnection(), battery=battery, solar=solar
    )
    # One 4-core server per tenant: enough headroom for every policy's
    # maximum worker pool (Wait&Scale tops out at 2 workers x 1 core).
    cluster = ClusterConfig(num_servers=num_apps, server=ServerConfig())
    env = _wire(plant, trace, cluster, tick_interval_s=60.0, price_trace=price_trace)

    shared = [i for i in range(num_apps) if i % SHARED_PLANT_STRIDE == 0]
    shared_fraction = 0.9 / len(shared) if shared else 0.0
    weights = np.asarray(POLICY_MIXES[mix], dtype=float)
    weights = weights / weights.sum()
    threshold_window_s = min(trace.duration_s, 48 * 3600.0)

    applications: List[Any] = []
    num_containers = 0
    for index in range(num_apps):
        rng = np.random.default_rng([root_seed, index])
        name = f"fleet-{index:04d}"
        # Work sized so a deterministic slice of the fleet completes
        # mid-run and the rest stays busy to the last tick.
        work_units = float(rng.uniform(0.4, 2.5)) * ticks * 60.0
        if rng.random() < 0.5:
            app = MLTrainingJob(name=name, total_work_units=work_units)
        else:
            app = SparkJob(name=name, total_work_units=work_units)
        kind = int(rng.choice(3, p=weights))
        if kind == 0:
            policy = CarbonAgnosticPolicy(workers=1)
        else:
            percentile = float(rng.uniform(25.0, 45.0))
            threshold = trace.percentile(percentile, 0.0, threshold_window_s)
            if kind == 1:
                policy = WaitAndScalePolicy(threshold, 1, 2.0)
            else:
                policy = SuspendResumePolicy(threshold, 1)
        if index in shared:
            share = ShareConfig(
                solar_fraction=shared_fraction,
                battery_fraction=shared_fraction,
                grid_power_w=float("inf"),
            )
        else:
            share = ShareConfig(grid_power_w=float("inf"))
        env.engine.add_application(app, share, policy)
        applications.append(app)
    if "batched" in params:
        env.engine.batched = bool(params["batched"])
    num_containers = len(env.platform.containers())
    return FleetEnvironment(
        engine=env.engine,
        ecovisor=env.ecovisor,
        applications=applications,
        num_containers=num_containers,
    )


def run_fleet(params: Dict[str, Any]) -> Dict[str, Any]:
    """Run one fleet to completion of its tick budget; return metrics."""
    fleet = build_fleet(params)
    executed = fleet.engine.run(int(params["ticks"]))
    ledger = fleet.ecovisor.ledger
    completed = sum(1 for app in fleet.applications if app.is_complete)
    progress = [
        app.progress_fraction
        for app in fleet.applications
        if hasattr(app, "progress_fraction")
    ]
    return {
        "ticks_executed": float(executed),
        "apps": float(len(fleet.applications)),
        "containers": float(fleet.num_containers),
        "completed_jobs": float(completed),
        "mean_progress": float(sum(progress) / len(progress)) if progress else 0.0,
        "energy_wh": float(ledger.total_energy_wh()),
        "carbon_g": float(ledger.total_carbon_g()),
        "cost_usd": float(ledger.total_cost_usd()),
    }


# ----------------------------------------------------------------------
# Dynamic tenancy: the fleet_churn scenario family
# ----------------------------------------------------------------------

#: Parameters defining a churn fleet's population *and* its schedule.
#: The static base population still derives from :data:`FLEET_PARAM_KEYS`
#: (so the initial fleet matches the static family bit-for-bit); the
#: schedule RNG mixes in the churn rates as well.
CHURN_PARAM_KEYS = ("apps", "mix", "seed", "ticks", "admit_rate", "evict_rate")

#: Solar/battery fraction granted to each dynamic tenant that wins a
#: share, and the cap on how many may hold one concurrently.  The static
#: fleet allocates 0.9 of solar and battery, so 8 x 0.01 stays inside
#: the 0.1 headroom with margin.
DYNAMIC_SHARE_FRACTION = 0.01
MAX_DYNAMIC_SHARES = 8


def churn_root_seed(params: Mapping[str, Any]) -> int:
    """Root seed of the churn *schedule* (digest over churn parameters)."""
    population = {k: params[k] for k in CHURN_PARAM_KEYS if k in params}
    return int(config_digest(population, length=16), 16)


def build_churn_fleet(params: Mapping[str, Any]) -> FleetEnvironment:
    """A static fleet plus a deterministic Poisson admit/evict schedule.

    Per tick, ``poisson(admit_rate)`` dynamic tenants arrive and
    ``poisson(evict_rate)`` of the still-live dynamic tenants depart
    (the static base population is never evicted, so the churn rides on
    a stable floor).  Every dynamic tenant is a small ML training job
    under a carbon-agnostic policy; tenants that win one of the
    :data:`MAX_DYNAMIC_SHARES` share slots are admitted grid-only and
    receive their solar+battery share via a scheduled ``set_share`` two
    ticks later — exercising mid-run rebalancing, not just admission.

    The whole schedule is precomputed here from ``churn_root_seed``, so
    two processes expanding the same spec build bit-identical schedules
    — the property the serial-vs-parallel sweep parity of
    ``fleet_churn`` rests on.
    """
    from repro.core.config import ShareConfig
    from repro.policies import CarbonAgnosticPolicy
    from repro.workloads.mltrain import MLTrainingJob

    import numpy as np

    fleet = build_fleet(params)
    engine = fleet.engine
    ticks = int(params["ticks"])
    admit_rate = float(params.get("admit_rate", 0.4))
    evict_rate = float(params.get("evict_rate", 0.3))
    if admit_rate < 0 or evict_rate < 0:
        raise ValueError("churn rates must be >= 0")
    rng = np.random.default_rng([churn_root_seed(params), 0xC0FFEE])

    live: List[Tuple[str, int]] = []  # (dynamic tenant, admission tick)
    shared_slots: List[str] = []  # dynamic tenants holding a share
    serial = 0
    for tick in range(1, ticks):
        # Only tenants admitted >= 3 ticks ago are evictable, so a
        # tenant's scheduled share change (admission + 2) has always
        # fired before its eviction can be drawn.
        for _ in range(int(rng.poisson(evict_rate))):
            eligible = [
                i for i, (_, admitted) in enumerate(live) if admitted <= tick - 3
            ]
            if not eligible:
                break
            victim, _ = live.pop(eligible[int(rng.integers(len(eligible)))])
            engine.schedule_eviction(tick, victim)
            if victim in shared_slots:
                shared_slots.remove(victim)
        for _ in range(int(rng.poisson(admit_rate))):
            name = f"churn-{serial:04d}"
            serial += 1
            work_units = float(rng.uniform(0.2, 1.0)) * ticks * 60.0
            app = MLTrainingJob(name=name, total_work_units=work_units)
            engine.schedule_admission(
                tick,
                app,
                ShareConfig(grid_power_w=float("inf")),
                CarbonAgnosticPolicy(workers=1),
            )
            live.append((name, tick))
            if (
                tick + 2 < ticks
                and len(shared_slots) < MAX_DYNAMIC_SHARES
                and rng.random() < 0.5
            ):
                shared_slots.append(name)
                engine.schedule_share_change(
                    tick + 2,
                    name,
                    ShareConfig(
                        solar_fraction=DYNAMIC_SHARE_FRACTION,
                        battery_fraction=DYNAMIC_SHARE_FRACTION,
                        grid_power_w=float("inf"),
                    ),
                )
    return fleet


def run_fleet_churn(params: Dict[str, Any]) -> Dict[str, Any]:
    """Run one churn fleet; returns metrics spanning evicted tenants too."""
    fleet = build_churn_fleet(params)
    engine = fleet.engine
    executed = engine.run(int(params["ticks"]))
    ledger = fleet.ecovisor.ledger
    evicted = engine.evicted_accounts
    live_apps = fleet.ecovisor.app_names()
    return {
        "ticks_executed": float(executed),
        "initial_apps": float(len(fleet.applications)),
        "final_apps": float(len(live_apps)),
        "admitted": float(len(ledger.app_names()) - len(fleet.applications)),
        "evicted": float(len(evicted)),
        "evicted_energy_wh": float(sum(a.energy_wh for a in evicted.values())),
        "evicted_carbon_g": float(sum(a.carbon_g for a in evicted.values())),
        "evicted_cost_usd": float(sum(a.cost_usd for a in evicted.values())),
        "energy_wh": float(ledger.total_energy_wh()),
        "carbon_g": float(ledger.total_carbon_g()),
        "cost_usd": float(ledger.total_cost_usd()),
    }
