"""Simulation harness: engine, environments, and result records."""

from repro.sim.engine import SimulationEngine
from repro.sim.experiment import (
    DEFAULT_CLUSTER,
    Environment,
    UNLIMITED_GRID_SHARE,
    arrival_offsets,
    carbon_threshold,
    grid_environment,
    run_batch_policy,
    solar_battery_environment,
)
from repro.sim.results import (
    BatchRunResult,
    BatchSummary,
    SeriesBundle,
    ServiceRunResult,
    summarize_batch,
)

__all__ = [
    "BatchRunResult",
    "BatchSummary",
    "DEFAULT_CLUSTER",
    "Environment",
    "SeriesBundle",
    "ServiceRunResult",
    "SimulationEngine",
    "UNLIMITED_GRID_SHARE",
    "arrival_offsets",
    "carbon_threshold",
    "grid_environment",
    "run_batch_policy",
    "solar_battery_environment",
    "summarize_batch",
]
