"""Simulation harness: engine, environments, scenarios, and the runner.

Layers inside this package:

- :mod:`repro.sim.engine` — the tick-driven simulation engine (the
  paper's Section 3.1 tick protocol).
- :mod:`repro.sim.experiment` — standard environment builders (grid-only
  and solar+battery plants) and batch-policy runners.
- :mod:`repro.sim.results` — result records and summaries.
- :mod:`repro.sim.scenarios` — the declarative scenario registry:
  named, parameterized experiment specs with sweep axes.
- :mod:`repro.sim.catalog` — the built-in scenarios (imported here so
  the registry is populated as soon as ``repro.sim`` is).
- :mod:`repro.sim.runner` — expands scenario matrices and executes them
  serially or across worker processes with deterministic results.
"""

from repro.sim.engine import SimulationEngine
from repro.sim.experiment import (
    DEFAULT_CLUSTER,
    Environment,
    UNLIMITED_GRID_SHARE,
    arrival_offsets,
    carbon_threshold,
    grid_environment,
    run_batch_policy,
    solar_battery_environment,
)
from repro.sim.results import (
    BatchRunResult,
    BatchSummary,
    SeriesBundle,
    ServiceRunResult,
    summarize_batch,
)
from repro.sim.scenarios import Scenario, ScenarioSpec, expand, register
from repro.sim import catalog  # noqa: F401  (registers the built-in scenarios)
from repro.sim.runner import (
    ScenarioResult,
    SweepResult,
    default_jobs,
    execute_spec,
    run_specs,
    run_sweep,
)

__all__ = [
    "BatchRunResult",
    "BatchSummary",
    "DEFAULT_CLUSTER",
    "Environment",
    "Scenario",
    "ScenarioResult",
    "ScenarioSpec",
    "SeriesBundle",
    "ServiceRunResult",
    "SimulationEngine",
    "SweepResult",
    "UNLIMITED_GRID_SHARE",
    "arrival_offsets",
    "carbon_threshold",
    "default_jobs",
    "execute_spec",
    "expand",
    "grid_environment",
    "register",
    "run_batch_policy",
    "run_specs",
    "run_sweep",
    "solar_battery_environment",
    "summarize_batch",
]
