"""The tick-driven simulation engine.

Drives the ecovisor, applications, and policies through the paper's tick
protocol (Section 3.1).  One engine tick performs, in order:

1. ``ecovisor.begin_tick``   — sample solar/carbon, refresh virtual
   views, publish asynchronous events.
2. ``ecovisor.invoke_app_ticks`` — deliver ``tick()`` upcalls (policies
   scale containers, set power caps, steer batteries).
3. ``app.step``              — workloads set container demand
   utilizations for the interval.
4. ``ecovisor.settle``       — measure power, settle each virtual energy
   system, attribute energy and carbon.
5. ``app.finish_tick``       — workloads commit progress and metrics
   using the settled served-energy fraction.
6. ``clock.advance``.

The engine stops at ``max_ticks`` or, optionally, as soon as every
tracked batch job has completed.

Control plane v1.1 makes the tenant population dynamic: applications can
be admitted, rebalanced, and evicted **mid-run** — immediately (through
``add_application`` / ``remove_application``, or externally through the
REST admin namespace) or on a schedule (``schedule_admission`` /
``schedule_share_change`` / ``schedule_eviction``), with scheduled
operations applied at the top of their tick, before ``begin_tick``, so
an admitted application participates in that tick's full protocol.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.accounting import AppAccount
from repro.core.api import EcovisorAPI, connect
from repro.core.clock import SimulationClock, TickInfo
from repro.core.config import ShareConfig
from repro.core.ecovisor import Ecovisor
from repro.core.errors import SimulationError
from repro.core.events import AppEvictedEvent
from repro.core.upcalls import UpcallPlane
from repro.obs.profiler import TickProfiler
from repro.policies.base import Policy
from repro.workloads.base import Application

TickObserver = Callable[[TickInfo], None]


class SimulationEngine:
    """Couples an ecovisor, a clock, and a set of (app, policy) pairs."""

    def __init__(
        self,
        ecovisor: Ecovisor,
        clock: Optional[SimulationClock] = None,
        batched: bool = True,
        profiler: Optional[TickProfiler] = None,
    ):
        self._ecovisor = ecovisor
        self._clock = clock or SimulationClock(
            tick_interval_s=ecovisor.config.tick_interval_s
        )
        # Disabled by default: the unprofiled loop stays byte-identical
        # to the pre-observability hot path.  Flip ``engine.profiler.
        # enabled`` (or pass an enabled profiler) to get per-tick phase
        # timings; rollups land in the ecovisor's metrics registry.
        self.profiler = profiler or TickProfiler(
            enabled=False, registry=ecovisor.metrics
        )
        ecovisor.profiler = self.profiler
        self._apps: List[Application] = []
        self._observers: List[TickObserver] = []
        self._batched = batched
        # Vectorized upcall plane (core/upcalls.py): grouped policy and
        # workload upcalls on the batched path; the unbatched loop keeps
        # the per-app reference calls the parity harness compares
        # against.
        self._plane = UpcallPlane(ecovisor)
        # Scheduled lifecycle operations, keyed by tick index.  Each
        # tick processes evictions, then share changes, then admissions
        # (frees capacity before granting it), in scheduling order.
        self._scheduled_evictions: Dict[int, List[str]] = {}
        self._scheduled_share_changes: Dict[int, List[Tuple[str, ShareConfig]]] = {}
        self._scheduled_admissions: Dict[
            int, List[Tuple[Application, ShareConfig, Optional[Policy]]]
        ] = {}
        self._evicted_accounts: Dict[str, AppAccount] = {}
        # Track evictions at the source: whichever path evicts (this
        # engine, the REST admin namespace, or direct Ecovisor calls),
        # the Application must stop being stepped and counted.
        ecovisor.events.subscribe(AppEvictedEvent, self._on_app_evicted)

    @property
    def ecovisor(self) -> Ecovisor:
        return self._ecovisor

    @property
    def clock(self) -> SimulationClock:
        return self._clock

    @property
    def batched(self) -> bool:
        """Whether :meth:`run` uses the batched tick hot path.

        True (the default) primes the ecovisor's per-tick signal cache
        for the run and lets settlement reuse the bulk container power
        pass.  False forces the per-application fallback loop — the
        reference the batched path is parity-tested against, and the
        ``use_snapshots=False`` analogue for benchmarking.
        """
        return self._batched

    @batched.setter
    def batched(self, value: bool) -> None:
        self._batched = bool(value)

    @property
    def applications(self) -> List[Application]:
        return list(self._apps)

    def add_application(
        self,
        app: Application,
        share: ShareConfig,
        policy: Optional[Policy] = None,
    ) -> EcovisorAPI:
        """Admit an application (and optionally its policy).

        Works both before the run and mid-run: admission goes through
        ``Ecovisor.admit_app``, so an ``AppAdmittedEvent`` is published
        and a mid-run admission joins the in-flight tick's settlement.
        """
        self._ecovisor.admit_app(app.name, share)
        api = connect(self._ecovisor, app.name)
        app.bind(api)
        if policy is not None:
            policy.attach(app, api)
        self._apps.append(app)
        return api

    def _on_app_evicted(self, event: AppEvictedEvent) -> None:
        """Unregister an evicted Application, whoever triggered it.

        Runs synchronously inside ``Ecovisor.evict_app`` (before any
        re-admission can reopen the account), so the finalized account
        stored here is the evicted tenant's.  When a name is re-admitted
        and evicted again, the latest life wins in this name-keyed dict;
        displaced lives remain in ``ledger.archived_accounts``.
        """
        self._apps = [app for app in self._apps if app.name != event.app_name]
        self._evicted_accounts[event.app_name] = self._ecovisor.ledger.account(
            event.app_name
        )

    def remove_application(self, name: str) -> AppAccount:
        """Evict an application mid-run; returns its finalized account.

        The application stops receiving ``step``/``finish_tick`` calls,
        its containers are stopped, and its solar/battery share returns
        to the admission pool (``Ecovisor.evict_app``; the same cleanup
        runs for evictions issued outside this engine, e.g. through the
        REST admin namespace).
        """
        return self._ecovisor.evict_app(name)

    # ------------------------------------------------------------------
    # Scheduled lifecycle (applied at the top of the target tick)
    # ------------------------------------------------------------------
    def schedule_admission(
        self,
        tick_index: int,
        app: Application,
        share: ShareConfig,
        policy: Optional[Policy] = None,
    ) -> None:
        """Admit ``app`` at the start of tick ``tick_index``."""
        self._scheduled_admissions.setdefault(tick_index, []).append(
            (app, share, policy)
        )

    def schedule_eviction(self, tick_index: int, app_name: str) -> None:
        """Evict ``app_name`` at the start of tick ``tick_index``."""
        self._scheduled_evictions.setdefault(tick_index, []).append(app_name)

    def schedule_share_change(
        self, tick_index: int, app_name: str, share: ShareConfig
    ) -> None:
        """Rebalance ``app_name`` to ``share`` at tick ``tick_index``.

        The change is staged via ``Ecovisor.set_share`` at the top of
        the tick, so it is effective for that same tick's ``begin_tick``.
        """
        self._scheduled_share_changes.setdefault(tick_index, []).append(
            (app_name, share)
        )

    @property
    def evicted_accounts(self) -> Dict[str, AppAccount]:
        """Finalized accounts of applications evicted through this engine."""
        return dict(self._evicted_accounts)

    def _process_scheduled(self, tick_index: int) -> None:
        """Apply lifecycle operations scheduled at or before this tick.

        Evictions and share changes targeting an application that is no
        longer registered (evicted earlier — by another schedule entry
        or an external controller) are silently skipped: one stale
        entry must not abort the run for every other tenant.
        Admissions stay strict (a duplicate name is a real error).
        """
        ecovisor = self._ecovisor
        for due in sorted(k for k in self._scheduled_evictions if k <= tick_index):
            for name in self._scheduled_evictions.pop(due):
                if ecovisor.has_app(name):
                    self.remove_application(name)
        for due in sorted(
            k for k in self._scheduled_share_changes if k <= tick_index
        ):
            for name, share in self._scheduled_share_changes.pop(due):
                if ecovisor.has_app(name):
                    ecovisor.set_share(name, share)
        for due in sorted(k for k in self._scheduled_admissions if k <= tick_index):
            for app, share, policy in self._scheduled_admissions.pop(due):
                self.add_application(app, share, policy)

    def add_observer(self, observer: TickObserver) -> None:
        """Call ``observer`` at the end of every tick (for custom probes)."""
        self._observers.append(observer)

    def run(
        self,
        max_ticks: int,
        stop_when_batch_complete: bool = False,
    ) -> int:
        """Run up to ``max_ticks`` ticks; returns the number executed.

        With ``stop_when_batch_complete``, the run ends one settled tick
        after every application reporting completion semantics finishes
        (service applications never complete and are ignored for the
        stopping rule unless they are the only applications).
        """
        if max_ticks <= 0:
            raise SimulationError(f"max_ticks must be positive, got {max_ticks}")
        ecovisor = self._ecovisor
        ecovisor.batched = self._batched
        # The columnar struct-of-arrays kernel rides the batched toggle;
        # batched=False remains the per-app reference object path the
        # parity harness compares against.
        ecovisor.columnar = self._batched
        if self._batched:
            # Precompute the run's solar/carbon/price signals in one
            # pass: tick k of this run starts at (start + k) * dt, the
            # same arithmetic the clock uses, so every lookup hits.
            clock = self._clock
            times = (
                clock.tick_index + np.arange(max_ticks)
            ) * clock.tick_interval_s
            ecovisor.prime_signal_cache(clock.tick_index, times)
        else:
            ecovisor.clear_signal_cache()
        if self.profiler.enabled:
            return self._run_profiled(max_ticks, stop_when_batch_complete)
        observers = self._observers
        plane = self._plane if self._batched else None
        executed = 0
        for _ in range(max_ticks):
            tick = self._clock.current_tick()
            if (
                self._scheduled_evictions
                or self._scheduled_share_changes
                or self._scheduled_admissions
            ):
                self._process_scheduled(tick.index)
            ecovisor.begin_tick(tick)
            if plane is not None:
                plane.invoke_policies(tick)
            else:
                ecovisor.invoke_app_ticks(tick)
            # Snapshot after the upcalls: applications admitted during
            # them are stepped and settled this very tick; evictions
            # later in the tick leave a harmless no-op finish_tick.
            apps = list(self._apps)
            if plane is not None:
                plane.step_workloads(tick, tick.duration_s, apps)
                fractions = ecovisor.settle(tick)
                plane.finish_workloads(tick, tick.duration_s, fractions, apps)
            else:
                for app in apps:
                    app.step(tick, tick.duration_s)
                fractions = ecovisor.settle(tick)
                for app in apps:
                    app.finish_tick(
                        tick, tick.duration_s, fractions.get(app.name, 1.0)
                    )
            for observer in observers:
                observer(tick)
            self._clock.advance()
            executed += 1
            if stop_when_batch_complete and self._all_batch_complete():
                break
        return executed

    def _run_profiled(
        self, max_ticks: int, stop_when_batch_complete: bool
    ) -> int:
        """The tick loop with phase timing brackets.

        A deliberate duplicate of the loop body in :meth:`run`: keeping
        the unprofiled path free of any per-tick conditionals or
        ``perf_counter`` calls is what makes ``enabled=False`` near-zero
        overhead (CI gates it at ≤2%).  Phase boundaries are consecutive
        ``perf_counter`` reads, so the six durations partition the tick
        exactly — their sum *is* the wall-clock tick time.  The policy
        window (t1..t2) splits into ``policy_batch``/``policy_fallback``
        by subtracting the plane's inline fallback timings; on the
        unbatched path the whole window is fallback time.
        """
        ecovisor = self._ecovisor
        observers = self._observers
        profiler = self.profiler
        plane = self._plane if self._batched else None
        executed = 0
        for _ in range(max_ticks):
            t0 = perf_counter()
            tick = self._clock.current_tick()
            if (
                self._scheduled_evictions
                or self._scheduled_share_changes
                or self._scheduled_admissions
            ):
                self._process_scheduled(tick.index)
            ecovisor.begin_tick(tick)
            t1 = perf_counter()
            if plane is not None:
                fallback_s = plane.invoke_policies(tick, timed=True)
            else:
                ecovisor.invoke_app_ticks(tick)
            t2 = perf_counter()
            apps = list(self._apps)
            if plane is not None:
                plane.step_workloads(tick, tick.duration_s, apps)
                t3 = perf_counter()
                fractions = ecovisor.settle(tick)
                t4 = perf_counter()
                plane.finish_workloads(tick, tick.duration_s, fractions, apps)
            else:
                for app in apps:
                    app.step(tick, tick.duration_s)
                t3 = perf_counter()
                fractions = ecovisor.settle(tick)
                t4 = perf_counter()
                for app in apps:
                    app.finish_tick(
                        tick, tick.duration_s, fractions.get(app.name, 1.0)
                    )
            for observer in observers:
                observer(tick)
            self._clock.advance()
            t5 = perf_counter()
            upcalls_s = t2 - t1
            if plane is not None:
                fallback_s = min(fallback_s, upcalls_s)
                batch_s = upcalls_s - fallback_s
            else:
                batch_s = 0.0
                fallback_s = upcalls_s
            profiler.record(
                tick.index,
                t1 - t0,
                batch_s,
                fallback_s,
                t3 - t2,
                t4 - t3,
                t5 - t4,
            )
            executed += 1
            if stop_when_batch_complete and self._all_batch_complete():
                break
        return executed

    def _all_batch_complete(self) -> bool:
        batch_like = [app for app in self._apps if _has_completion(app)]
        if not batch_like:
            return False
        return all(app.is_complete for app in batch_like)


def _has_completion(app: Application) -> bool:
    """True for applications whose ``is_complete`` can become True."""
    # Services inherit the always-False default; batch jobs override the
    # property.  Checking the class attribute avoids running model code.
    return type(app).is_complete is not Application.is_complete
