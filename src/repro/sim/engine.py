"""The tick-driven simulation engine.

Drives the ecovisor, applications, and policies through the paper's tick
protocol (Section 3.1).  One engine tick performs, in order:

1. ``ecovisor.begin_tick``   — sample solar/carbon, refresh virtual
   views, publish asynchronous events.
2. ``ecovisor.invoke_app_ticks`` — deliver ``tick()`` upcalls (policies
   scale containers, set power caps, steer batteries).
3. ``app.step``              — workloads set container demand
   utilizations for the interval.
4. ``ecovisor.settle``       — measure power, settle each virtual energy
   system, attribute energy and carbon.
5. ``app.finish_tick``       — workloads commit progress and metrics
   using the settled served-energy fraction.
6. ``clock.advance``.

The engine stops at ``max_ticks`` or, optionally, as soon as every
tracked batch job has completed.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.core.api import EcovisorAPI, connect
from repro.core.clock import SimulationClock, TickInfo
from repro.core.config import ShareConfig
from repro.core.ecovisor import Ecovisor
from repro.core.errors import SimulationError
from repro.policies.base import Policy
from repro.workloads.base import Application

TickObserver = Callable[[TickInfo], None]


class SimulationEngine:
    """Couples an ecovisor, a clock, and a set of (app, policy) pairs."""

    def __init__(
        self,
        ecovisor: Ecovisor,
        clock: Optional[SimulationClock] = None,
        batched: bool = True,
    ):
        self._ecovisor = ecovisor
        self._clock = clock or SimulationClock(
            tick_interval_s=ecovisor.config.tick_interval_s
        )
        self._apps: List[Application] = []
        self._observers: List[TickObserver] = []
        self._batched = batched

    @property
    def ecovisor(self) -> Ecovisor:
        return self._ecovisor

    @property
    def clock(self) -> SimulationClock:
        return self._clock

    @property
    def batched(self) -> bool:
        """Whether :meth:`run` uses the batched tick hot path.

        True (the default) primes the ecovisor's per-tick signal cache
        for the run and lets settlement reuse the bulk container power
        pass.  False forces the per-application fallback loop — the
        reference the batched path is parity-tested against, and the
        ``use_snapshots=False`` analogue for benchmarking.
        """
        return self._batched

    @batched.setter
    def batched(self, value: bool) -> None:
        self._batched = bool(value)

    @property
    def applications(self) -> List[Application]:
        return list(self._apps)

    def add_application(
        self,
        app: Application,
        share: ShareConfig,
        policy: Optional[Policy] = None,
    ) -> EcovisorAPI:
        """Register an application (and optionally its policy) for the run."""
        self._ecovisor.register_app(app.name, share)
        api = connect(self._ecovisor, app.name)
        app.bind(api)
        if policy is not None:
            policy.attach(app, api)
        self._apps.append(app)
        return api

    def add_observer(self, observer: TickObserver) -> None:
        """Call ``observer`` at the end of every tick (for custom probes)."""
        self._observers.append(observer)

    def run(
        self,
        max_ticks: int,
        stop_when_batch_complete: bool = False,
    ) -> int:
        """Run up to ``max_ticks`` ticks; returns the number executed.

        With ``stop_when_batch_complete``, the run ends one settled tick
        after every application reporting completion semantics finishes
        (service applications never complete and are ignored for the
        stopping rule unless they are the only applications).
        """
        if max_ticks <= 0:
            raise SimulationError(f"max_ticks must be positive, got {max_ticks}")
        ecovisor = self._ecovisor
        ecovisor.batched = self._batched
        if self._batched:
            # Precompute the run's solar/carbon/price signals in one
            # pass: tick k of this run starts at (start + k) * dt, the
            # same arithmetic the clock uses, so every lookup hits.
            clock = self._clock
            times = (
                clock.tick_index + np.arange(max_ticks)
            ) * clock.tick_interval_s
            ecovisor.prime_signal_cache(clock.tick_index, times)
        else:
            ecovisor.clear_signal_cache()
        apps = self._apps
        observers = self._observers
        executed = 0
        for _ in range(max_ticks):
            tick = self._clock.current_tick()
            ecovisor.begin_tick(tick)
            ecovisor.invoke_app_ticks(tick)
            for app in apps:
                app.step(tick, tick.duration_s)
            fractions = ecovisor.settle(tick)
            for app in apps:
                app.finish_tick(tick, tick.duration_s, fractions.get(app.name, 1.0))
            for observer in observers:
                observer(tick)
            self._clock.advance()
            executed += 1
            if stop_when_batch_complete and self._all_batch_complete():
                break
        return executed

    def _all_batch_complete(self) -> bool:
        batch_like = [app for app in self._apps if _has_completion(app)]
        if not batch_like:
            return False
        return all(app.is_complete for app in batch_like)


def _has_completion(app: Application) -> bool:
    """True for applications whose ``is_complete`` can become True."""
    # Services inherit the always-False default; batch jobs override the
    # property.  Checking the class attribute avoids running model code.
    return type(app).is_complete is not Application.is_complete
