"""Declarative scenario registry for the experiment runner.

The paper's evaluation is a collection of parameter sweeps — carbon
traces, battery policies, solar caps, multi-tenant mixes (Figures 4-11).
This module makes those sweeps *declarative*: a scenario is registered
once as a named, parameterized spec (defaults + sweep axes + a run
function), and :func:`expand` turns it into a concrete scenario matrix
that :mod:`repro.sim.runner` executes serially or across worker
processes.

Design contract (important for parallel execution):

- A scenario's ``run`` function must be a **module-level callable** under
  ``src/`` so worker processes can import it; it takes one ``dict`` of
  parameters and returns a flat ``dict`` of JSON-serializable metrics.
  It must build every simulation object itself (factory-based
  construction) — pre-built engines/ecovisors are not picklable.
- A :class:`ScenarioSpec` carries only the scenario *name* and plain
  parameter values, so it pickles cheaply; workers re-resolve the name
  against the registry (:mod:`repro.sim.catalog` registers the built-ins
  on import).
- Given the same spec, a run function must be deterministic: all
  randomness must flow from explicit ``seed`` parameters.

The built-in scenarios live in :mod:`repro.sim.catalog`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.config import config_digest
from repro.core.errors import ScenarioError, UnknownScenarioError

RunFunction = Callable[[Dict[str, Any]], Dict[str, Any]]


@dataclass(frozen=True)
class Scenario:
    """One registered, parameterized experiment family.

    ``defaults`` are scalar parameters every run receives; ``sweep`` maps
    axis names to the tuple of values that axis takes.  :func:`expand`
    produces the cartesian product of all axes merged over the defaults.
    """

    name: str
    run: RunFunction
    description: str = ""
    defaults: Mapping[str, Any] = field(default_factory=dict)
    sweep: Mapping[str, Tuple[Any, ...]] = field(default_factory=dict)
    tags: Tuple[str, ...] = ()

    def parameter_names(self) -> Tuple[str, ...]:
        """Every parameter the scenario accepts (defaults and axes)."""
        return tuple(sorted({*self.defaults, *self.sweep}))


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully resolved, picklable run: a scenario name + concrete params.

    ``index`` is the spec's position in its expanded matrix; the runner
    reports results in index order regardless of which worker finishes
    first, so serial and parallel sweeps produce identical tables.
    """

    scenario: str
    params: Mapping[str, Any]
    index: int = 0

    @property
    def seed(self) -> Optional[int]:
        """The spec's seed parameter, if the scenario defines one."""
        seed = self.params.get("seed")
        return None if seed is None else int(seed)

    @property
    def config_hash(self) -> str:
        """Stable digest of (scenario, params) — run provenance.

        When any parameter names a registered dataset (directly or via a
        generation spec), the dataset identities *and checksums* join
        the digest payload: two runs hash identically only if they read
        identical data bytes.  Specs without dataset references keep
        their pre-provider hashes (the ``datasets`` key is omitted).
        """
        payload: Dict[str, Any] = {
            "scenario": self.scenario,
            "params": dict(self.params),
        }
        datasets = self.dataset_provenance
        if datasets:
            payload["datasets"] = datasets
        return config_digest(payload)

    @property
    def dataset_provenance(self) -> Dict[str, Dict[str, str]]:
        """Dataset name + sha256 for each param naming a bundled dataset."""
        from repro.providers.registry import dataset_provenance

        return dataset_provenance(self.params)

    def label(self) -> str:
        """Compact human-readable label, e.g. ``smoke[policy=agnostic]``."""
        inner = ",".join(f"{k}={self.params[k]}" for k in sorted(self.params))
        return f"{self.scenario}[{inner}]"


_REGISTRY: Dict[str, Scenario] = {}


def register(
    name: str,
    *,
    description: str = "",
    defaults: Optional[Mapping[str, Any]] = None,
    sweep: Optional[Mapping[str, Sequence[Any]]] = None,
    tags: Sequence[str] = (),
) -> Callable[[RunFunction], RunFunction]:
    """Decorator: register a module-level run function as a scenario.

    Raises :class:`ScenarioError` if ``name`` is already taken or a sweep
    axis shadows a default (an axis value always wins, so the overlap is
    a definition bug).
    """

    def decorator(fn: RunFunction) -> RunFunction:
        if name in _REGISTRY:
            raise ScenarioError(f"scenario already registered: {name!r}")
        axes = {k: tuple(v) for k, v in (sweep or {}).items()}
        for axis, values in axes.items():
            if not values:
                raise ScenarioError(f"sweep axis {axis!r} has no values")
        overlap = set(axes) & set(defaults or {})
        if overlap:
            raise ScenarioError(
                f"sweep axes shadow defaults: {sorted(overlap)}"
            )
        _REGISTRY[name] = Scenario(
            name=name,
            run=fn,
            description=description,
            defaults=dict(defaults or {}),
            sweep=axes,
            tags=tuple(tags),
        )
        return fn

    return decorator


def unregister(name: str) -> None:
    """Remove a scenario (test hygiene; built-ins normally stay put)."""
    _REGISTRY.pop(name, None)


def get(name: str) -> Scenario:
    """Look up a registered scenario; raises :class:`UnknownScenarioError`."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownScenarioError(name) from None


def names() -> List[str]:
    """All registered scenario names, sorted."""
    return sorted(_REGISTRY)


def expand(
    name: str, overrides: Optional[Mapping[str, Any]] = None
) -> List[ScenarioSpec]:
    """Expand a scenario (with overrides) into its concrete run matrix.

    Overrides replace parameters by name: a scalar collapses a sweep axis
    to one value (or replaces a default); a list/tuple value *becomes* a
    sweep axis.  Unknown parameter names raise :class:`ScenarioError` so
    typos fail loudly instead of silently sweeping nothing.

    The expansion order is deterministic: axes iterate in registration
    order, later axes varying fastest (``itertools.product`` order), and
    each spec records its matrix ``index``.
    """
    scenario = get(name)
    params: Dict[str, Any] = dict(scenario.defaults)
    axes: Dict[str, Tuple[Any, ...]] = dict(scenario.sweep)
    known = {*params, *axes}
    for key, value in (overrides or {}).items():
        if key not in known:
            raise ScenarioError(
                f"scenario {name!r} has no parameter {key!r}; "
                f"known parameters: {sorted(known)}"
            )
        if isinstance(value, (list, tuple)):
            if not value:
                raise ScenarioError(f"override axis {key!r} has no values")
            axes[key] = tuple(value)
            params.pop(key, None)
        else:
            axes.pop(key, None)
            params[key] = value
    axis_names = list(axes)
    specs: List[ScenarioSpec] = []
    for index, combo in enumerate(
        itertools.product(*(axes[k] for k in axis_names))
    ):
        run_params = dict(params)
        run_params.update(zip(axis_names, combo))
        specs.append(ScenarioSpec(scenario=name, params=run_params, index=index))
    return specs


def describe(name: str) -> str:
    """One-paragraph plain-text description of a scenario's parameter space."""
    scenario = get(name)
    lines = [f"{scenario.name}: {scenario.description or '(no description)'}"]
    if scenario.defaults:
        pairs = ", ".join(f"{k}={v}" for k, v in sorted(scenario.defaults.items()))
        lines.append(f"  defaults: {pairs}")
    for axis, values in scenario.sweep.items():
        lines.append(f"  axis {axis}: {list(values)}")
    lines.append(f"  matrix size: {matrix_size(name)}")
    return "\n".join(lines)


def matrix_size(name: str) -> int:
    """Number of runs :func:`expand` produces with no overrides."""
    scenario = get(name)
    size = 1
    for values in scenario.sweep.values():
        size *= len(values)
    return size
