"""Experiment construction helpers.

Standard environments and runners used by the per-figure experiments in
:mod:`repro.analysis.figures`, the examples, and the tests.  Everything is
deterministic given the seeds.

The paper's two hardware setups map onto two environment builders:

- :func:`grid_environment` — the Section 5.1/5.2 experiments: grid power
  only, carbon simulated from a CAISO-like trace.
- :func:`solar_battery_environment` — the Section 5.3/5.4 experiments:
  co-located solar (emulated array) and a battery bank; grid optional.

These builders are the factory layer the scenario registry
(:mod:`repro.sim.scenarios`) relies on: a run is described by plain
parameters and environments are constructed fresh inside each (possibly
remote) worker process, never pickled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.carbon.service import CarbonIntensityService
from repro.carbon.traces import CarbonTrace, make_region_trace
from repro.cluster.cop import ContainerOrchestrationPlatform
from repro.core.clock import SimulationClock
from repro.core.config import (
    BatteryConfig,
    CarbonServiceConfig,
    ClusterConfig,
    EcovisorConfig,
    GridConfig,
    PriceServiceConfig,
    ServerConfig,
    ShareConfig,
    SolarConfig,
)
from repro.core.ecovisor import Ecovisor
from repro.energy.battery import Battery
from repro.energy.grid import GridConnection
from repro.energy.solar import SolarArrayEmulator, SolarTrace
from repro.energy.system import PhysicalEnergySystem
from repro.market.prices import PriceTrace
from repro.market.service import PriceSignal
from repro.policies.base import Policy
from repro.sim.engine import SimulationEngine
from repro.sim.results import BatchRunResult
from repro.workloads.base import BatchJob

DEFAULT_CLUSTER = ClusterConfig(num_servers=12, server=ServerConfig())
UNLIMITED_GRID_SHARE = ShareConfig(grid_power_w=float("inf"))


@dataclass(frozen=True)
class Environment:
    """One fully wired simulation environment."""

    ecovisor: Ecovisor
    engine: SimulationEngine
    carbon_service: CarbonIntensityService
    plant: PhysicalEnergySystem
    platform: ContainerOrchestrationPlatform
    price_signal: Optional[PriceSignal] = None


def grid_environment(
    trace: Optional[CarbonTrace] = None,
    region: str = "caiso",
    days: int = 4,
    seed: int = 2023,
    cluster: ClusterConfig = DEFAULT_CLUSTER,
    tick_interval_s: float = 60.0,
    price_trace: Optional[PriceTrace] = None,
) -> Environment:
    """Grid-only plant with a carbon-intensity trace (Sections 5.1-5.2).

    Passing ``price_trace`` attaches the market layer: grid energy is
    billed at the trace's price each tick and the price signal becomes
    visible through the API/REST surface.
    """
    if trace is None:
        trace = make_region_trace(region, days=days, seed=seed)
    plant = PhysicalEnergySystem(grid=GridConnection(GridConfig()))
    return _wire(plant, trace, cluster, tick_interval_s, price_trace)


def solar_battery_environment(
    solar_peak_w: float,
    battery_capacity_wh: float,
    days: int = 4,
    seed: int = 2023,
    solar_scale: float = 1.0,
    trace: Optional[CarbonTrace] = None,
    region: str = "caiso",
    cluster: ClusterConfig = DEFAULT_CLUSTER,
    with_grid: bool = True,
    tick_interval_s: float = 60.0,
    battery_initial_soc: float = 0.50,
    cloudiness: float = 0.35,
    price_trace: Optional[PriceTrace] = None,
) -> Environment:
    """Solar + battery plant (Sections 5.3-5.4); grid optional."""
    if trace is None:
        trace = make_region_trace(region, days=days, seed=seed)
    solar = SolarArrayEmulator(
        SolarConfig(peak_power_w=solar_peak_w, scale=solar_scale),
        SolarTrace(days=days, seed=seed, cloudiness=cloudiness),
    )
    battery = Battery(
        BatteryConfig(
            capacity_wh=battery_capacity_wh,
            initial_soc_fraction=battery_initial_soc,
        )
    )
    grid = GridConnection(GridConfig()) if with_grid else None
    plant = PhysicalEnergySystem(grid=grid, battery=battery, solar=solar)
    return _wire(plant, trace, cluster, tick_interval_s, price_trace)


def _wire(
    plant: PhysicalEnergySystem,
    trace: CarbonTrace,
    cluster: ClusterConfig,
    tick_interval_s: float,
    price_trace: Optional[PriceTrace] = None,
) -> Environment:
    carbon_service = CarbonIntensityService(
        CarbonServiceConfig(region=trace.region), trace=trace
    )
    price_signal = (
        PriceSignal(PriceServiceConfig(regime=price_trace.regime), trace=price_trace)
        if price_trace is not None
        else None
    )
    platform = ContainerOrchestrationPlatform(cluster)
    ecovisor = Ecovisor(
        plant,
        platform,
        carbon_service,
        EcovisorConfig(tick_interval_s=tick_interval_s),
        price_signal=price_signal,
    )
    engine = SimulationEngine(ecovisor, SimulationClock(tick_interval_s))
    return Environment(
        ecovisor=ecovisor,
        engine=engine,
        carbon_service=carbon_service,
        plant=plant,
        platform=platform,
        price_signal=price_signal,
    )


def carbon_threshold(
    trace: CarbonTrace, percentile: float, window_s: Optional[float] = None
) -> float:
    """Policy threshold: a percentile of intensity over a lookahead window.

    Section 5.1 uses the 30th percentile over a 48 h window for the ML
    job and the 33rd percentile over the trace duration for BLAST.
    """
    end = window_s if window_s is not None else trace.duration_s
    return trace.percentile(percentile, 0.0, end)


def arrival_offsets(
    count: int, trace_duration_s: float, seed: int = 99
) -> List[float]:
    """Deterministic 'random' job arrival offsets within the first half
    of the trace (so every job can still complete inside it)."""
    import numpy as np

    rng = np.random.default_rng(seed)
    return list(rng.uniform(0.0, trace_duration_s / 2.0, size=count))


def run_batch_policy(
    make_app: Callable[[], BatchJob],
    make_policy: Callable[[CarbonTrace], Policy],
    policy_label: str,
    base_trace: CarbonTrace,
    offsets: Sequence[float],
    max_ticks: int,
    cluster: ClusterConfig = DEFAULT_CLUSTER,
    share: ShareConfig = UNLIMITED_GRID_SHARE,
    tick_interval_s: float = 60.0,
) -> List[BatchRunResult]:
    """Run one batch policy across repeated arrivals; one result per run.

    Each repetition rolls the carbon trace to the arrival offset (the
    paper randomizes job arrivals against CAISO data) and rebuilds the
    whole environment so runs are independent.
    """
    results = []
    for offset in offsets:
        trace = base_trace.rolled(offset)
        env = grid_environment(
            trace=trace, cluster=cluster, tick_interval_s=tick_interval_s
        )
        app = make_app()
        policy = make_policy(trace)
        env.engine.add_application(app, share, policy)
        env.engine.run(max_ticks, stop_when_batch_complete=True)
        account = env.ecovisor.ledger.account(app.name)
        runtime = app.completion_time_s
        results.append(
            BatchRunResult(
                policy_label=policy_label,
                arrival_offset_s=offset,
                runtime_s=runtime if runtime is not None else float("inf"),
                carbon_g=account.carbon_g,
                energy_wh=account.energy_wh,
                completed=app.is_complete,
            )
        )
    return results
