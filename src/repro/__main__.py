"""``python -m repro`` — regenerate paper figures from the shell."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
