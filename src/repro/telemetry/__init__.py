"""Telemetry: software-defined power monitoring and time-series storage."""

from repro.telemetry.monitor import PowerMonitor
from repro.telemetry.timeseries import Series, TimeSeriesDatabase

__all__ = ["PowerMonitor", "Series", "TimeSeriesDatabase"]
