"""In-memory time-series database.

The prototype stores historical power and carbon data in InfluxDB so the
ecovisor can answer "sophisticated queries over historical data" (paper
Section 3.1).  This class provides that capability in-process: named
series of (time, value) points with interval queries, aggregation, and
trapezoidal power-to-energy integration.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.errors import TraceError
from repro.core.units import SECONDS_PER_HOUR


class Series:
    """One append-only time series with monotonically increasing times."""

    def __init__(self, name: str):
        self._name = name
        self._times: List[float] = []
        self._values: List[float] = []

    @property
    def name(self) -> str:
        return self._name

    def __len__(self) -> int:
        return len(self._times)

    def append(self, time_s: float, value: float) -> None:
        if self._times and time_s < self._times[-1]:
            raise TraceError(
                f"series {self._name!r}: non-monotonic append "
                f"({time_s} after {self._times[-1]})"
            )
        self._times.append(float(time_s))
        self._values.append(float(value))

    def latest(self) -> Tuple[float, float]:
        if not self._times:
            raise TraceError(f"series {self._name!r} is empty")
        return self._times[-1], self._values[-1]

    def window(self, start_s: float, end_s: float) -> Tuple[np.ndarray, np.ndarray]:
        """Points with start_s <= time < end_s as (times, values) arrays."""
        lo = bisect.bisect_left(self._times, start_s)
        hi = bisect.bisect_left(self._times, end_s)
        return (
            np.asarray(self._times[lo:hi]),
            np.asarray(self._values[lo:hi]),
        )

    def times(self) -> np.ndarray:
        return np.asarray(self._times)

    def values(self) -> np.ndarray:
        return np.asarray(self._values)


class TimeSeriesDatabase:
    """Named series with interval queries and aggregation."""

    def __init__(self):
        self._series: Dict[str, Series] = {}

    def record(self, name: str, time_s: float, value: float) -> None:
        """Append one point to series ``name`` (created on first write)."""
        series = self._series.get(name)
        if series is None:
            series = Series(name)
            self._series[name] = series
        series.append(time_s, value)

    def has_series(self, name: str) -> bool:
        return name in self._series

    def series_names(self) -> List[str]:
        return sorted(self._series)

    def series(self, name: str) -> Series:
        try:
            return self._series[name]
        except KeyError:
            raise TraceError(f"no such series: {name!r}") from None

    def latest(self, name: str, default: float | None = None) -> float:
        """Most recent value of a series, or ``default`` if empty/missing."""
        series = self._series.get(name)
        if series is None or len(series) == 0:
            if default is None:
                raise TraceError(f"series {name!r} has no data")
            return default
        return series.latest()[1]

    def window(
        self, name: str, start_s: float, end_s: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self.series(name).window(start_s, end_s)

    def mean(self, name: str, start_s: float, end_s: float) -> float:
        """Mean of values in the window; zero when the window is empty."""
        _, values = self.window(name, start_s, end_s)
        if len(values) == 0:
            return 0.0
        return float(values.mean())

    def total(self, name: str, start_s: float, end_s: float) -> float:
        """Sum of values in the window (for per-tick increment series)."""
        _, values = self.window(name, start_s, end_s)
        return float(values.sum())

    def percentile(self, name: str, q: float, start_s: float, end_s: float) -> float:
        """Percentile of values in the window; NaN when empty."""
        _, values = self.window(name, start_s, end_s)
        if len(values) == 0:
            return float("nan")
        return float(np.percentile(values, q))

    def integrate_power_wh(self, name: str, start_s: float, end_s: float) -> float:
        """Integrate a power series (W) over the window into energy (Wh).

        Uses left-rectangle integration matching the simulator's
        discretization: each sample holds for one tick interval.
        """
        times, values = self.window(name, start_s, end_s)
        if len(times) == 0:
            return 0.0
        if len(times) == 1:
            return float(values[0] * (end_s - times[0]) / SECONDS_PER_HOUR)
        widths = np.diff(times)
        last_width = end_s - times[-1]
        energy = float(np.dot(values[:-1], widths) + values[-1] * last_width)
        return energy / SECONDS_PER_HOUR

    def to_rows(self, names: Sequence[str]) -> List[Tuple[float, ...]]:
        """Align several series on the first one's timestamps (for export)."""
        if not names:
            return []
        base = self.series(names[0])
        rows = []
        for i, t in enumerate(base.times()):
            row = [t, base.values()[i]]
            for other_name in names[1:]:
                other = self.series(other_name)
                times = other.times()
                idx = min(
                    bisect.bisect_right(list(times), t) - 1, len(times) - 1
                )
                row.append(float(other.values()[idx]) if idx >= 0 else float("nan"))
            rows.append(tuple(row))
        return rows
