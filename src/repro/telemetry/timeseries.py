"""In-memory time-series database.

The prototype stores historical power and carbon data in InfluxDB so the
ecovisor can answer "sophisticated queries over historical data" (paper
Section 3.1).  This class provides that capability in-process: named
series of (time, value) points with interval queries, aggregation, and
trapezoidal power-to-energy integration.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.errors import TraceError
from repro.core.units import SECONDS_PER_HOUR


class Series:
    """One append-only time series with monotonically increasing times.

    Appends are amortized O(1): points land in plain Python lists, and
    the numpy views handed out by :meth:`times`/:meth:`values` are built
    lazily and cached until the next append — per-tick telemetry writes
    never pay a list-to-array conversion, and repeated reads (exports,
    ``to_rows`` alignment) reuse one immutable array instead of
    re-materializing it per call.
    """

    __slots__ = ("_name", "_times", "_values", "_times_arr", "_values_arr")

    def __init__(self, name: str):
        self._name = name
        self._times: List[float] = []
        self._values: List[float] = []
        self._times_arr: np.ndarray | None = None
        self._values_arr: np.ndarray | None = None

    @property
    def name(self) -> str:
        return self._name

    def __len__(self) -> int:
        return len(self._times)

    def append(self, time_s: float, value: float) -> None:
        times = self._times
        if times and time_s < times[-1]:
            raise TraceError(
                f"series {self._name!r}: non-monotonic append "
                f"({time_s} after {times[-1]})"
            )
        times.append(float(time_s))
        self._values.append(float(value))
        self._times_arr = None
        self._values_arr = None

    def latest(self) -> Tuple[float, float]:
        if not self._times:
            raise TraceError(f"series {self._name!r} is empty")
        return self._times[-1], self._values[-1]

    def window(self, start_s: float, end_s: float) -> Tuple[np.ndarray, np.ndarray]:
        """Points with start_s <= time < end_s as (times, values) arrays."""
        lo = bisect.bisect_left(self._times, start_s)
        hi = bisect.bisect_left(self._times, end_s)
        return self.times()[lo:hi], self.values()[lo:hi]

    def times(self) -> np.ndarray:
        """All timestamps as a read-only array (cached between appends)."""
        if self._times_arr is None:
            arr = np.asarray(self._times)
            arr.flags.writeable = False
            self._times_arr = arr
        return self._times_arr

    def values(self) -> np.ndarray:
        """All values as a read-only array (cached between appends)."""
        if self._values_arr is None:
            arr = np.asarray(self._values)
            arr.flags.writeable = False
            self._values_arr = arr
        return self._values_arr


class TimeSeriesDatabase:
    """Named series with interval queries and aggregation.

    A writer that buffers points (the ecovisor's columnar tick path) can
    install a *flush hook*: a zero-argument callable invoked before any
    read or handle resolution, so buffered points land before consumers
    observe the database.  ``Series.append`` itself is hook-free — cached
    handles held by per-tick writers stay on the fast path.
    """

    def __init__(self):
        self._series: Dict[str, Series] = {}
        self._flush_hook = None

    def set_flush_hook(self, hook) -> None:
        """Install (or clear, with None) the pre-read flush callable."""
        self._flush_hook = hook

    def _flush(self) -> None:
        if self._flush_hook is not None:
            self._flush_hook()

    def record(self, name: str, time_s: float, value: float) -> None:
        """Append one point to series ``name`` (created on first write)."""
        self.series_handle(name).append(time_s, value)

    def series_handle(self, name: str) -> Series:
        """The (auto-created) series, for hot-path callers to hold onto.

        Per-tick writers (the power monitor, the ecovisor's settlement
        telemetry) cache these handles so the hot loop appends directly
        instead of re-resolving ``name`` every tick.
        """
        self._flush()
        series = self._series.get(name)
        if series is None:
            series = Series(name)
            self._series[name] = series
        return series

    def has_series(self, name: str) -> bool:
        self._flush()
        return name in self._series

    def series_names(self) -> List[str]:
        self._flush()
        return sorted(self._series)

    def series(self, name: str) -> Series:
        self._flush()
        try:
            return self._series[name]
        except KeyError:
            raise TraceError(f"no such series: {name!r}") from None

    def latest(self, name: str, default: float | None = None) -> float:
        """Most recent value of a series, or ``default`` if empty/missing."""
        self._flush()
        series = self._series.get(name)
        if series is None or len(series) == 0:
            if default is None:
                raise TraceError(f"series {name!r} has no data")
            return default
        return series.latest()[1]

    def window(
        self, name: str, start_s: float, end_s: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self.series(name).window(start_s, end_s)

    def mean(self, name: str, start_s: float, end_s: float) -> float:
        """Mean of values in the window; zero when the window is empty."""
        _, values = self.window(name, start_s, end_s)
        if len(values) == 0:
            return 0.0
        return float(values.mean())

    def total(self, name: str, start_s: float, end_s: float) -> float:
        """Sum of values in the window (for per-tick increment series)."""
        _, values = self.window(name, start_s, end_s)
        return float(values.sum())

    def percentile(self, name: str, q: float, start_s: float, end_s: float) -> float:
        """Percentile of values in the window; NaN when empty."""
        _, values = self.window(name, start_s, end_s)
        if len(values) == 0:
            return float("nan")
        return float(np.percentile(values, q))

    def integrate_power_wh(self, name: str, start_s: float, end_s: float) -> float:
        """Integrate a power series (W) over the window into energy (Wh).

        Uses left-rectangle integration matching the simulator's
        discretization: each sample holds for one tick interval.
        """
        times, values = self.window(name, start_s, end_s)
        if len(times) == 0:
            return 0.0
        if len(times) == 1:
            return float(values[0] * (end_s - times[0]) / SECONDS_PER_HOUR)
        widths = np.diff(times)
        last_width = end_s - times[-1]
        energy = float(np.dot(values[:-1], widths) + values[-1] * last_width)
        return energy / SECONDS_PER_HOUR

    def to_rows(self, names: Sequence[str]) -> List[Tuple[float, ...]]:
        """Align several series on the first one's timestamps (for export)."""
        if not names:
            return []
        base = self.series(names[0])
        base_times = base.times()
        base_values = base.values()
        others = [
            (self.series(name).times().tolist(), self.series(name).values())
            for name in names[1:]
        ]
        rows = []
        for i, t in enumerate(base_times):
            row = [float(t), float(base_values[i])]
            for times, values in others:
                idx = min(bisect.bisect_right(times, t) - 1, len(times) - 1)
                row.append(float(values[idx]) if idx >= 0 else float("nan"))
            rows.append(tuple(row))
        return rows
