"""Software-defined power monitoring.

The prototype uses PowerAPI, a middleware toolkit for building
software-defined power meters, to monitor per-container power, battery
power, solar generation, grid usage, and carbon intensity, persisting all
of it to a time-series database (paper Section 4).  This class is that
meter: each tick it computes per-container attributed power from the
orchestration platform's power model and writes every signal into the
:class:`~repro.telemetry.timeseries.TimeSeriesDatabase`.

Series naming scheme (stable, used by benches and analysis):

- ``container.<id>.power_w``
- ``app.<name>.power_w``        — summed container power
- ``app.<name>.carbon_rate_mg_s``
- ``app.<name>.containers``     — running container count
- ``app.<name>.cost_usd``       — per-tick grid cost (market layer)
- ``grid.carbon_g_per_kwh``
- ``grid.price_usd_per_kwh``    — electricity price (market layer)
- ``plant.solar_w``, ``plant.battery_level_wh``, ``plant.grid_power_w``
- ``cluster.power_w``           — all containers + platform baseline
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.cluster.cop import ContainerOrchestrationPlatform
from repro.telemetry.timeseries import TimeSeriesDatabase


class PowerMonitor:
    """Samples the platform each tick and persists telemetry."""

    def __init__(
        self,
        platform: ContainerOrchestrationPlatform,
        database: TimeSeriesDatabase | None = None,
    ):
        self._platform = platform
        self._db = database or TimeSeriesDatabase()

    @property
    def database(self) -> TimeSeriesDatabase:
        return self._db

    def sample_containers(self, time_s: float) -> Dict[str, float]:
        """Measure per-container power; returns {container_id: watts}."""
        readings: Dict[str, float] = {}
        for container in self._platform.containers():
            power = self._platform.container_power_w(container.id)
            readings[container.id] = power
            self._db.record(f"container.{container.id}.power_w", time_s, power)
        return readings

    def sample_apps(
        self, time_s: float, app_names: Iterable[str]
    ) -> Dict[str, float]:
        """Measure per-application power; returns {app_name: watts}."""
        readings: Dict[str, float] = {}
        for app_name in app_names:
            power = self._platform.app_power_w(app_name)
            count = len(self._platform.running_containers_for(app_name))
            readings[app_name] = power
            self._db.record(f"app.{app_name}.power_w", time_s, power)
            self._db.record(f"app.{app_name}.containers", time_s, float(count))
        return readings

    def sample_cluster(self, time_s: float) -> float:
        """Measure whole-cluster power including the platform baseline."""
        power = self._platform.cluster_power_w()
        self._db.record("cluster.power_w", time_s, power)
        return power

    def record_carbon_intensity(self, time_s: float, intensity: float) -> None:
        self._db.record("grid.carbon_g_per_kwh", time_s, intensity)

    def record_grid_price(self, time_s: float, price_usd_per_kwh: float) -> None:
        self._db.record("grid.price_usd_per_kwh", time_s, price_usd_per_kwh)

    def record_plant(
        self,
        time_s: float,
        solar_w: float,
        battery_level_wh: float,
        grid_power_w: float,
    ) -> None:
        self._db.record("plant.solar_w", time_s, solar_w)
        self._db.record("plant.battery_level_wh", time_s, battery_level_wh)
        self._db.record("plant.grid_power_w", time_s, grid_power_w)

    def record_app_carbon_rate(
        self, time_s: float, app_name: str, rate_mg_per_s: float
    ) -> None:
        self._db.record(f"app.{app_name}.carbon_rate_mg_s", time_s, rate_mg_per_s)
