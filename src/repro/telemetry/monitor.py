"""Software-defined power monitoring.

The prototype uses PowerAPI, a middleware toolkit for building
software-defined power meters, to monitor per-container power, battery
power, solar generation, grid usage, and carbon intensity, persisting all
of it to a time-series database (paper Section 4).  This class is that
meter: each tick it computes per-container attributed power from the
orchestration platform's power model and writes every signal into the
:class:`~repro.telemetry.timeseries.TimeSeriesDatabase`.

Hot-path notes: the monitor runs once per tick for every container and
application, so it caches its :class:`~repro.telemetry.timeseries.Series`
handles (no per-append name formatting or registry lookups) and measures
all container powers in one platform pass that settlement then reuses
instead of re-deriving power per application.

Series naming scheme (stable, used by benches and analysis):

- ``container.<id>.power_w``
- ``app.<name>.power_w``        — summed container power
- ``app.<name>.carbon_rate_mg_s``
- ``app.<name>.containers``     — running container count
- ``app.<name>.cost_usd``       — per-tick grid cost (market layer)
- ``grid.carbon_g_per_kwh``
- ``grid.price_usd_per_kwh``    — electricity price (market layer)
- ``plant.solar_w``, ``plant.battery_level_wh``, ``plant.grid_power_w``
- ``cluster.power_w``           — all containers + platform baseline
- ``cluster.apps``              — registered application count (churn)
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.cluster.cop import ContainerOrchestrationPlatform
from repro.telemetry.timeseries import Series, TimeSeriesDatabase


class PowerMonitor:
    """Samples the platform each tick and persists telemetry."""

    def __init__(
        self,
        platform: ContainerOrchestrationPlatform,
        database: TimeSeriesDatabase | None = None,
    ):
        self._platform = platform
        self._db = database or TimeSeriesDatabase()
        self._handles: Dict[str, Series] = {}
        self._container_handles: Dict[str, Series] = {}

    @property
    def database(self) -> TimeSeriesDatabase:
        return self._db

    def _series(self, name: str) -> Series:
        """The cached series handle for ``name`` (created on first use)."""
        series = self._handles.get(name)
        if series is None:
            series = self._db.series_handle(name)
            self._handles[name] = series
        return series

    def sample_containers(self, time_s: float) -> Dict[str, float]:
        """Measure per-container power; returns {container_id: watts}.

        One bulk platform pass; settlement reuses the returned readings
        for per-application demand instead of re-measuring.
        """
        readings = self._platform.container_powers()
        handles = self._container_handles
        for container_id, power in readings.items():
            series = handles.get(container_id)
            if series is None:
                series = self._db.series_handle(f"container.{container_id}.power_w")
                handles[container_id] = series
            series.append(time_s, power)
        return readings

    def sample_apps(
        self, time_s: float, app_names: Iterable[str]
    ) -> Dict[str, float]:
        """Measure per-application power; returns {app_name: watts}.

        The per-app fallback: the platform is re-queried per
        application.  The batched settlement loop instead sums each
        app's power from the bulk container readings itself and records
        through :meth:`record_app_power`.
        """
        readings: Dict[str, float] = {}
        platform = self._platform
        for app_name in app_names:
            power = platform.app_power_w(app_name)
            count = len(platform.running_containers_for(app_name))
            readings[app_name] = power
            self._series(f"app.{app_name}.power_w").append(time_s, power)
            self._series(f"app.{app_name}.containers").append(time_s, float(count))
        return readings

    def record_app_power(
        self, time_s: float, app_name: str, power_w: float, container_count: int
    ) -> None:
        """Persist one app's already-measured power and container count.

        The batched settlement loop measures each application once (from
        the bulk container readings) and records through here, instead
        of :meth:`sample_apps` re-walking every app's container list.
        """
        self._series(f"app.{app_name}.power_w").append(time_s, power_w)
        self._series(f"app.{app_name}.containers").append(
            time_s, float(container_count)
        )

    def sample_cluster(
        self,
        time_s: float,
        container_readings: Optional[Dict[str, float]] = None,
    ) -> float:
        """Measure whole-cluster power including the platform baseline."""
        if container_readings is None:
            power = self._platform.cluster_power_w()
        else:
            attributed = sum(
                container_readings[c.id]
                for c in self._platform.running_containers()
            )
            power = attributed + self._platform.baseline_power_w()
        self._series("cluster.power_w").append(time_s, power)
        return power

    def record_carbon_intensity(self, time_s: float, intensity: float) -> None:
        self._series("grid.carbon_g_per_kwh").append(time_s, intensity)

    def record_grid_price(self, time_s: float, price_usd_per_kwh: float) -> None:
        self._series("grid.price_usd_per_kwh").append(time_s, price_usd_per_kwh)

    def record_plant(
        self,
        time_s: float,
        solar_w: float,
        battery_level_wh: float,
        grid_power_w: float,
    ) -> None:
        self._series("plant.solar_w").append(time_s, solar_w)
        self._series("plant.battery_level_wh").append(time_s, battery_level_wh)
        self._series("plant.grid_power_w").append(time_s, grid_power_w)

    def record_app_count(self, time_s: float, count: int) -> None:
        """Persist the registered-application count (churn telemetry)."""
        self._series("cluster.apps").append(time_s, float(count))

    def record_app_carbon_rate(
        self, time_s: float, app_name: str, rate_mg_per_s: float
    ) -> None:
        self._series(f"app.{app_name}.carbon_rate_mg_s").append(
            time_s, rate_mg_per_s
        )
