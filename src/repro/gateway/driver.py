"""Tick stepping under a live gateway.

The engine and the API handlers must never run concurrently — tick
determinism is the repo's core invariant.  The driver therefore steps
the engine **one tick at a time on the gateway's writer thread**: each
step is one executor task, serialized against every dispatched handler,
so a run under load interleaves as

    [tick 0] [requests...] [tick 1] [requests...] ...

exactly like a single-threaded program.  Stepwise ``run(1)`` is
byte-identical to one ``run(N)``: the engine primes its signal cache
per call from ``(clock.tick_index + arange(n)) * dt``, the same
arithmetic either way (pinned by the gateway determinism test).

After each tick the driver pumps the stream broker (on the writer
thread) and invalidates the snapshot cache (back on the event loop, so
``await driver.step()`` guarantees the next poll sees the new tick).
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.gateway.server import GatewayServer
    from repro.sim.engine import SimulationEngine


class TickDriver:
    """Steps a :class:`SimulationEngine` through a gateway's writer."""

    def __init__(
        self,
        gateway: "GatewayServer",
        engine: "SimulationEngine",
        tick_interval_seconds: float = 0.0,
    ):
        self._gateway = gateway
        self._engine = engine
        self._interval = tick_interval_seconds
        self.ticks_run = 0

    async def step(self) -> None:
        """One tick: engine + broker pump on the writer, then cache drop."""
        await self._gateway.run_on_writer(self._step_on_writer)
        self._gateway.cache.invalidate()
        self.ticks_run += 1

    def _step_on_writer(self) -> None:
        self._engine.run(1)
        self._gateway.broker.pump()

    async def run(self, ticks: int) -> int:
        """Run ``ticks`` ticks, sleeping the wall-clock interval between."""
        for _ in range(ticks):
            await self.step()
            if self._interval > 0:
                await asyncio.sleep(self._interval)
        return ticks
