"""Per-tick shared snapshot cache for ``GET /v1/apps/{app}/state``.

A thousand concurrent pollers of the same app should cost one dispatch
and one serialization per tick, not a thousand.  The cache stores, per
app, the fully *rendered* response bytes (200-with-body and 304) plus
the sync layer's own strong ETag, so repeat polls — and especially
``If-None-Match`` revalidations — are served straight from the event
loop without ever touching the writer thread.

Coherence comes from the tick driver: :meth:`invalidate` is called on
the event loop after every completed tick step (and after any mutating
dispatch), dropping all entries.  A miss populates the cache through a
single-flight future, so N simultaneous cold pollers still cost one
dispatch.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Awaitable, Callable, Dict, Optional


@dataclass(frozen=True)
class CacheEntry:
    """One app's cached snapshot: its ETag and both rendered responses."""

    etag: str
    fresh_response: bytes
    not_modified_response: bytes


class SnapshotCache:
    """App-keyed response cache with single-flight population.

    All methods run on the event loop; the cache holds no locks and
    never touches the simulation.
    """

    def __init__(self):
        self._entries: Dict[str, CacheEntry] = {}
        self._inflight: Dict[str, "asyncio.Future[Optional[CacheEntry]]"] = {}
        #: Lifetime counters, exposed through the gateway's metrics.
        self.invalidations = 0

    def get(self, app_name: str) -> Optional[CacheEntry]:
        return self._entries.get(app_name)

    async def populate(
        self,
        app_name: str,
        build: Callable[[], Awaitable[Optional[CacheEntry]]],
    ) -> Optional[CacheEntry]:
        """The entry for ``app_name``, building it at most once at a time.

        ``build`` dispatches through the writer thread and returns the
        new entry, or ``None`` for responses that must not be cached
        (errors); concurrent callers await the same in-flight build.
        The built entry is only stored if no :meth:`invalidate` landed
        while the build was in flight, so a response computed against
        tick N can never be served after tick N+1 completes.
        """
        entry = self._entries.get(app_name)
        if entry is not None:
            return entry
        inflight = self._inflight.get(app_name)
        if inflight is not None:
            return await asyncio.shield(inflight)
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Optional[CacheEntry]]" = loop.create_future()
        self._inflight[app_name] = future
        generation = self.invalidations
        try:
            entry = await build()
        except BaseException as exc:
            future.set_exception(exc)
            # A waiter may have been cancelled away before retrieving
            # the exception; don't let that surface as "never retrieved".
            future.exception()
            raise
        finally:
            if self._inflight.get(app_name) is future:
                del self._inflight[app_name]
        future.set_result(entry)
        if entry is not None and generation == self.invalidations:
            self._entries[app_name] = entry
        return entry

    def invalidate(self) -> None:
        """Drop every entry (a tick completed or state was mutated)."""
        self.invalidations += 1
        self._entries.clear()
