"""Async API gateway: the network front-end of the ecovisor API.

The paper's prototype "runs on an external server and exposes a REST
API to applications" (Section 4); ROADMAP item 2 asks that surface to
hold up under heavy concurrent traffic.  This package is that serving
layer: an asyncio HTTP/1.1 server (stdlib only) wrapping the
synchronous in-process :class:`~repro.rest.server.EcovisorRestServer`.

Three design rules keep the gateway from perturbing the simulation:

- **Single writer.**  Every sim-touching dispatch and every tick step
  runs on one dedicated executor thread, in arrival order.  The event
  loop never touches the ecovisor directly, so a thousand concurrent
  clients interleave exactly like a thousand sequential ones and tick
  determinism is preserved (pinned by the gateway parity tests).
- **Shared snapshots.**  ``GET /v1/apps/{app}/state`` is served from a
  per-tick response cache: the first poller after a tick pays one
  dispatch + one serialization; everyone else gets the same bytes, and
  ``If-None-Match`` hits never leave the event loop.
- **Push, not poll.**  ``GET /v1/apps/{app}/events/stream`` streams the
  event journal over Server-Sent Events with heartbeats,
  ``Last-Event-ID`` resume mapped to journal cursors, and bounded
  per-connection queues with drop counters.
"""

from repro.gateway.cache import SnapshotCache
from repro.gateway.driver import TickDriver
from repro.gateway.http import HttpRequest, read_request, render_response
from repro.gateway.server import GatewayConfig, GatewayServer
from repro.gateway.sse import StreamBroker, Subscriber, format_sse_event

__all__ = [
    "GatewayConfig",
    "GatewayServer",
    "HttpRequest",
    "SnapshotCache",
    "StreamBroker",
    "Subscriber",
    "TickDriver",
    "format_sse_event",
    "read_request",
    "render_response",
]
