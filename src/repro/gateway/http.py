"""Minimal asyncio HTTP/1.1 plumbing for the gateway.

The container bakes in no async HTTP framework, and the gateway needs
very little: parse a request head + optional body off a stream, and
render responses whose bodies are precomputed bytes (the snapshot cache
stores fully rendered responses).  So this module hand-rolls exactly
that subset — HTTP/1.1 with keep-alive, ``Content-Length`` bodies,
no chunked uploads, no TLS.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

#: Upper bound on a request head (start line + headers).
MAX_HEAD_BYTES = 32 * 1024

#: Upper bound on a request body (ecovisor bodies are tiny JSON dicts).
MAX_BODY_BYTES = 1024 * 1024

REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    304: "Not Modified",
    307: "Temporary Redirect",
    308: "Permanent Redirect",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
}


class BadRequest(Exception):
    """A request the parser refuses; maps onto a 400/413 response."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    """One parsed request: header names are folded to lowercase."""

    method: str
    target: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def json_body(self) -> Optional[Dict[str, Any]]:
        """The body decoded as a JSON object, or ``None`` when absent."""
        if not self.body:
            return None
        try:
            decoded = json.loads(self.body)
        except ValueError as exc:
            raise BadRequest(400, f"invalid JSON body: {exc}") from None
        if not isinstance(decoded, dict):
            raise BadRequest(400, "request body must be a JSON object")
        return decoded


async def read_request(reader: asyncio.StreamReader) -> Optional[HttpRequest]:
    """Parse one request off ``reader``; ``None`` on a clean EOF.

    Raises :class:`BadRequest` for malformed heads, missing
    ``Content-Length`` framing, or oversized heads/bodies.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise BadRequest(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise BadRequest(413, "request head too large") from None
    if len(head) > MAX_HEAD_BYTES:
        raise BadRequest(413, "request head too large")

    try:
        lines = head.decode("latin-1").split("\r\n")
        method, target, version = lines[0].split(" ", 2)
    except (UnicodeDecodeError, ValueError):
        raise BadRequest(400, "malformed request line") from None
    if not version.startswith("HTTP/1."):
        raise BadRequest(400, f"unsupported protocol: {version}")

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise BadRequest(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError:
            raise BadRequest(400, "malformed Content-Length") from None
        if length < 0:
            raise BadRequest(400, "malformed Content-Length")
        if length > MAX_BODY_BYTES:
            raise BadRequest(413, "request body too large")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise BadRequest(400, "truncated request body") from None
    elif headers.get("transfer-encoding"):
        raise BadRequest(411, "chunked request bodies are not supported")
    return HttpRequest(method=method.upper(), target=target, headers=headers, body=body)


def render_response(
    status: int,
    headers: Mapping[str, str],
    body: bytes = b"",
    *,
    keep_alive: bool = True,
) -> bytes:
    """One full HTTP/1.1 response as bytes.

    ``Content-Length`` is always emitted (304s carry ``0``) so
    keep-alive framing never depends on connection close.
    """
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    for name, value in headers.items():
        lines.append(f"{name}: {value}")
    lines.append(f"Content-Length: {len(body)}")
    if not keep_alive:
        lines.append("Connection: close")
    head = "\r\n".join(lines).encode("latin-1") + b"\r\n\r\n"
    return head + body


def json_response(
    status: int,
    payload: Any,
    headers: Optional[Mapping[str, str]] = None,
    *,
    keep_alive: bool = True,
) -> bytes:
    """A rendered JSON response (sorted keys, so bytes are deterministic)."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    merged: Dict[str, str] = {"Content-Type": "application/json"}
    if headers:
        merged.update(headers)
    return render_response(status, merged, body, keep_alive=keep_alive)


def split_target(target: str) -> Tuple[str, str]:
    """``/path?query`` split into ``(path, query_string)``."""
    path, _, query = target.partition("?")
    return path, query
