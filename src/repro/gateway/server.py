"""The asyncio gateway server: network front-end over the sync router.

Request flow:

- ``GET /v1/apps/{app}/state`` — served from the :class:`SnapshotCache`
  on the event loop.  An ``If-None-Match`` hit costs zero dispatches and
  zero serializations; a cold miss populates the cache through one
  single-flight dispatch on the writer thread.
- ``GET /v1/apps/{app}/events/stream`` — upgraded to a Server-Sent
  Events stream fed by the :class:`~repro.gateway.sse.StreamBroker`.
- everything else — dispatched verbatim through
  :meth:`EcovisorRestServer.request` on the single writer thread, so
  handler execution interleaves with tick steps in a deterministic
  serial order.

Mutating dispatches (any non-GET) invalidate the snapshot cache, and
every writer-thread task ends with a broker pump, so SSE subscribers
see admin-driven events (eviction, share changes) without waiting for
the next tick.
"""

from __future__ import annotations

import asyncio
import functools
import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, TypeVar

from repro.core.ecovisor import Ecovisor
from repro.core.errors import UnknownApplicationError
from repro.gateway.cache import CacheEntry, SnapshotCache
from repro.gateway.http import (
    BadRequest,
    HttpRequest,
    json_response,
    read_request,
    render_response,
    split_target,
)
from repro.gateway.sse import (
    DEFAULT_QUEUE_SIZE,
    HEARTBEAT_FRAME,
    StreamBroker,
    Subscriber,
    format_sse_event,
)
from repro.rest.router import Response
from repro.rest.server import (
    SNAPSHOT_CACHE_CONTROL,
    EcovisorRestServer,
    etag_matches,
)

T = TypeVar("T")

_STATE_PREFIX = "/v1/apps/"
_STATE_SUFFIX = "/state"
_STREAM_SUFFIX = "/events/stream"

#: Response headers of an SSE stream (no Content-Length: the stream
#: ends with the connection).
_SSE_HEAD = (
    b"HTTP/1.1 200 OK\r\n"
    b"Content-Type: text/event-stream\r\n"
    b"Cache-Control: no-store\r\n"
    b"Connection: close\r\n\r\n"
)


def _route_app(path: str, prefix: str, suffix: str) -> Optional[str]:
    """The ``{app}`` segment if ``path`` is ``prefix{app}suffix``."""
    if not (path.startswith(prefix) and path.endswith(suffix)):
        return None
    app = path[len(prefix) : len(path) - len(suffix)]
    if not app or "/" in app:
        return None
    return app


@dataclass(frozen=True)
class GatewayConfig:
    """Tunables for one gateway instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral, read the bound port back from `.port`
    heartbeat_seconds: float = 15.0
    queue_size: int = DEFAULT_QUEUE_SIZE


class GatewayServer:
    """Asyncio HTTP front-end bound to one ecovisor.

    Owns the single-writer executor; every sim-touching callable in the
    process (handler dispatch *and* tick stepping, via
    :class:`~repro.gateway.driver.TickDriver`) must go through
    :meth:`run_on_writer` so the simulation only ever sees one thread.
    """

    def __init__(
        self,
        ecovisor: Ecovisor,
        rest: Optional[EcovisorRestServer] = None,
        config: Optional[GatewayConfig] = None,
    ):
        self._ecovisor = ecovisor
        self._rest = rest if rest is not None else EcovisorRestServer(ecovisor)
        self._config = config or GatewayConfig()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="gateway-writer"
        )
        self._cache = SnapshotCache()
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._connections: "set[asyncio.Task[None]]" = set()

        metrics = ecovisor.metrics
        self._open_connections = metrics.gauge(
            "gateway_open_connections",
            "TCP connections the gateway currently holds open.",
        )
        self._sse_streams_open = metrics.gauge(
            "gateway_sse_streams_open",
            "SSE event streams currently subscribed.",
        )
        self._sse_events_sent = metrics.counter(
            "gateway_sse_events_sent_total",
            "SSE event frames written (journal and control events).",
        )
        self._sse_bytes_sent = metrics.counter(
            "gateway_sse_bytes_sent_total",
            "Bytes written to SSE streams, heartbeats included.",
        )
        self._etag_hits = metrics.counter(
            "gateway_etag_hits_total",
            "Conditional state GETs answered 304 from the snapshot cache.",
        )
        self._etag_misses = metrics.counter(
            "gateway_etag_misses_total",
            "State GETs that needed a full body (cached or dispatched).",
        )
        self._queue_dropped = metrics.counter(
            "gateway_sse_queue_dropped_total",
            "Events dropped on full per-connection SSE queues.",
        )
        self._broker = StreamBroker(
            ecovisor,
            queue_size=self._config.queue_size,
            on_queue_drop=self._queue_dropped.inc,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._broker.bind_loop(self._loop)
        self._server = await asyncio.start_server(
            self._handle_connection, self._config.host, self._config.port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Long-lived SSE handlers never return on their own; cancel and
        # reap them so shutdown is quiet and deterministic.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
            self._connections.clear()
        self._executor.shutdown(wait=True)

    @property
    def host(self) -> str:
        return self._config.host

    @property
    def port(self) -> int:
        """The bound port (resolves ephemeral port 0 after ``start``)."""
        if self._server is None:
            return self._config.port
        return self._server.sockets[0].getsockname()[1]

    @property
    def rest(self) -> EcovisorRestServer:
        return self._rest

    @property
    def ecovisor(self) -> Ecovisor:
        return self._ecovisor

    @property
    def cache(self) -> SnapshotCache:
        return self._cache

    @property
    def broker(self) -> StreamBroker:
        return self._broker

    async def run_on_writer(self, fn: Callable[..., T], *args: Any) -> T:
        """Run ``fn`` on the single writer thread and await its result."""
        assert self._loop is not None, "gateway not started"
        return await self._loop.run_in_executor(
            self._executor, functools.partial(fn, *args)
        )

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._open_connections.inc()
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionResetError, BrokenPipeError, TimeoutError):
            pass
        except asyncio.CancelledError:
            # Cancellation only comes from `stop()`; fall through to the
            # teardown below instead of surfacing at loop shutdown.
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            self._open_connections.dec()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                request = await read_request(reader)
            except BadRequest as exc:
                writer.write(
                    json_response(
                        exc.status, {"error": str(exc)}, keep_alive=False
                    )
                )
                await writer.drain()
                return
            if request is None:
                return
            path, _query = split_target(request.target)
            stream_app = _route_app(path, _STATE_PREFIX, _STREAM_SUFFIX)
            if stream_app is not None and request.method == "GET":
                await self._serve_stream(stream_app, request, writer)
                return  # the stream consumes the rest of the connection
            payload = await self._respond(request, path)
            writer.write(payload)
            await writer.drain()
            if not request.keep_alive:
                return

    async def _respond(self, request: HttpRequest, path: str) -> bytes:
        """Rendered response bytes for one non-stream request."""
        state_app = _route_app(path, _STATE_PREFIX, _STATE_SUFFIX)
        if state_app is not None and request.method == "GET":
            cached = await self._serve_state(state_app, request)
            if cached is not None:
                return cached
        try:
            body = request.json_body()
        except BadRequest as exc:
            return json_response(exc.status, {"error": str(exc)})
        response = await self.run_on_writer(
            self._dispatch_on_writer, request.method, request.target, body,
            dict(request.headers),
        )
        if request.method != "GET":
            # Mutations (powercaps, admissions, evictions) can change
            # what the state route answers; drop cached snapshots.
            self._cache.invalidate()
        return self._render(response)

    def _dispatch_on_writer(
        self,
        method: str,
        target: str,
        body: Optional[Dict[str, Any]],
        headers: Dict[str, str],
    ) -> Response:
        """One sync dispatch + broker pump, on the writer thread."""
        try:
            return self._rest.request(method, target, body, headers=headers)
        finally:
            self._broker.pump()

    def _render(self, response: Response) -> bytes:
        headers = dict(response.headers)
        if response.status == 304 or response.body is None:
            return render_response(response.status, headers)
        if isinstance(response.body, str):
            headers.setdefault("Content-Type", "text/plain; charset=utf-8")
            return render_response(
                response.status, headers, response.body.encode("utf-8")
            )
        headers.setdefault("Content-Type", "application/json")
        body = json.dumps(response.body, sort_keys=True).encode("utf-8")
        return render_response(response.status, headers, body)

    # ------------------------------------------------------------------
    # Cached state route
    # ------------------------------------------------------------------
    async def _serve_state(
        self, app_name: str, request: HttpRequest
    ) -> Optional[bytes]:
        """Serve ``GET .../state`` from the per-tick cache.

        Returns ``None`` when the snapshot is uncacheable (unknown app,
        handler error) — the caller falls back to a generic dispatch so
        the error response carries the sync layer's exact body.
        """
        entry = self._cache.get(app_name)
        if entry is None:
            entry = await self._cache.populate(
                app_name, functools.partial(self._build_state_entry, app_name)
            )
            if entry is None:
                return None
        if etag_matches(request.headers.get("if-none-match"), entry.etag):
            self._etag_hits.inc()
            return entry.not_modified_response
        self._etag_misses.inc()
        return entry.fresh_response

    async def _build_state_entry(self, app_name: str) -> Optional[CacheEntry]:
        response = await self.run_on_writer(
            self._dispatch_on_writer,
            "GET", f"{_STATE_PREFIX}{app_name}{_STATE_SUFFIX}", None, {},
        )
        if response.status != 200 or response.etag is None:
            return None
        cache_control = response.header("Cache-Control") or SNAPSHOT_CACHE_CONTROL
        not_modified = render_response(
            304, {"ETag": response.etag, "Cache-Control": cache_control}
        )
        return CacheEntry(
            etag=response.etag,
            fresh_response=self._render(response),
            not_modified_response=not_modified,
        )

    # ------------------------------------------------------------------
    # SSE streaming
    # ------------------------------------------------------------------
    async def _serve_stream(
        self, app_name: str, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> None:
        _path, query = split_target(request.target)
        cursor = 0
        last_id = request.headers.get("last-event-id")
        source = last_id
        if source is None and query:
            for pair in query.split("&"):
                key, _, value = pair.partition("=")
                if key == "cursor":
                    source = value
        try:
            if source is not None:
                cursor = int(source)
                if last_id is not None:
                    cursor += 1  # resume *after* the last seen event
                if cursor < 0:
                    raise ValueError
        except ValueError:
            writer.write(
                json_response(
                    400,
                    {"error": f"invalid stream cursor: {source!r}"},
                    keep_alive=False,
                )
            )
            await writer.drain()
            return
        try:
            subscriber, backlog = await self.run_on_writer(
                self._broker.register, app_name, cursor
            )
        except UnknownApplicationError as exc:
            writer.write(
                json_response(404, {"error": str(exc)}, keep_alive=False)
            )
            await writer.drain()
            return
        self._sse_streams_open.inc()
        try:
            writer.write(_SSE_HEAD)
            self._write_frame(
                writer,
                _open_frame(app_name, subscriber.cursor),
                count_event=True,
            )
            ended = False
            for item in backlog:
                self._write_frame(writer, item.frame(), count_event=True)
                ended = ended or item.terminal
            await writer.drain()
            while not ended:
                ended = await self._stream_once(subscriber, writer)
        except (ConnectionResetError, BrokenPipeError, TimeoutError, OSError):
            pass
        finally:
            self._broker.unregister(subscriber)
            self._sse_streams_open.dec()

    async def _stream_once(
        self, subscriber: Subscriber, writer: asyncio.StreamWriter
    ) -> bool:
        """Forward queued items (or a heartbeat); True when the stream ends."""
        try:
            item = await asyncio.wait_for(
                subscriber.queue.get(), timeout=self._config.heartbeat_seconds
            )
        except asyncio.TimeoutError:
            self._write_frame(writer, HEARTBEAT_FRAME, count_event=False)
            await writer.drain()
            return False
        ended = False
        while True:
            self._write_frame(writer, item.frame(), count_event=True)
            if item.terminal:
                ended = True
                break
            try:
                item = subscriber.queue.get_nowait()
            except asyncio.QueueEmpty:
                break
        await writer.drain()
        return ended

    def _write_frame(
        self, writer: asyncio.StreamWriter, frame: bytes, *, count_event: bool
    ) -> None:
        writer.write(frame)
        self._sse_bytes_sent.inc(len(frame))
        if count_event:
            self._sse_events_sent.inc()


def _open_frame(app_name: str, cursor: int) -> bytes:
    """The greeting control frame: tells the client where the stream starts."""
    payload = json.dumps(
        {"app_name": app_name, "cursor": cursor}, sort_keys=True
    )
    return format_sse_event("stream_open", payload)
