"""Server-Sent Events framing and journal fan-out for the gateway.

One :class:`StreamBroker` bridges the single-writer simulation thread
and the asyncio event loop.  Journal reads happen **only** on the
writer thread (``register`` and ``pump`` are submitted to the gateway's
executor), so streaming never races a tick; delivery into per-connection
``asyncio.Queue``\\ s happens **only** on the event loop (scheduled via
``call_soon_threadsafe``), because asyncio queues are not thread-safe.

SSE ``id:`` fields carry journal sequence numbers, so a client's
``Last-Event-ID`` on reconnect maps directly onto a journal cursor
(``id + 1``).  Resume past the journal horizon behaves exactly like a
stale cursor poll: the stream restarts from the oldest retained event
and a ``journal_dropped`` control event reports the gap.  Per-connection
queues are bounded: a consumer slower than the event rate loses events
(counted, and surfaced in-band by a ``queue_dropped`` control event
once the queue drains) instead of growing the server's memory.
"""

from __future__ import annotations

import asyncio
import json
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.errors import UnknownApplicationError
from repro.core.events import AppEvictedEvent, event_to_dict

#: Comment frame written when a heartbeat interval passes with no events.
HEARTBEAT_FRAME = b": heartbeat\n\n"

#: Default per-connection queue bound (events, not bytes).
DEFAULT_QUEUE_SIZE = 256


def format_sse_event(
    name: str, data: str, seq: Optional[int] = None
) -> bytes:
    """One SSE frame: optional ``id``, an ``event`` name, one ``data`` line.

    Event payloads are single-line JSON, so the one-``data:``-line form
    is lossless.
    """
    lines = []
    if seq is not None:
        lines.append(f"id: {seq}")
    lines.append(f"event: {name}")
    lines.append(f"data: {data}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")


@dataclass(frozen=True)
class StreamItem:
    """One queued stream entry: a journal event or a control event.

    ``seq`` is the journal sequence for journal events and ``None`` for
    control events (``journal_dropped``, ``queue_dropped``,
    ``stream_end``); ``terminal`` marks the last frame of a stream.
    """

    name: str
    data: str
    seq: Optional[int] = None
    terminal: bool = False

    def frame(self) -> bytes:
        return format_sse_event(self.name, self.data, seq=self.seq)


def _control_item(name: str, payload: Dict[str, Any], terminal: bool = False) -> StreamItem:
    return StreamItem(
        name=name, data=json.dumps(payload, sort_keys=True), terminal=terminal
    )


def _journal_item(seq: int, event: Any) -> StreamItem:
    payload = event_to_dict(event)
    return StreamItem(
        name=payload["type"],
        data=json.dumps(payload, sort_keys=True),
        seq=seq,
    )


class Subscriber:
    """One SSE connection's bounded queue plus its delivery cursor."""

    __slots__ = ("app_name", "queue", "cursor", "dropped", "_pending_drop", "closed")

    def __init__(self, app_name: str, cursor: int, queue_size: int):
        self.app_name = app_name
        #: Next journal seq this subscriber still needs (dedupes the
        #: register-backlog / first-pump overlap).
        self.cursor = cursor
        self.queue: "asyncio.Queue[StreamItem]" = asyncio.Queue(maxsize=queue_size)
        #: Events lost to a full queue over the connection's lifetime.
        self.dropped = 0
        self._pending_drop = 0
        self.closed = False

    def _offer(self, item: StreamItem) -> None:
        """Enqueue ``item``; on overflow count the loss instead.

        Once space frees up, the next successful delivery is preceded by
        a ``queue_dropped`` control event describing the gap, so a slow
        consumer *knows* its view has holes rather than silently missing
        signals.
        """
        if self.closed:
            return
        if self._pending_drop:
            notice = _control_item(
                "queue_dropped",
                {"dropped": self._pending_drop, "total_dropped": self.dropped},
            )
            try:
                self.queue.put_nowait(notice)
            except asyncio.QueueFull:
                self._drop()
                return
            self._pending_drop = 0
        try:
            self.queue.put_nowait(item)
        except asyncio.QueueFull:
            self._drop()

    def _drop(self) -> None:
        self.dropped += 1
        self._pending_drop += 1


class StreamBroker:
    """Fans the per-app event journal out to SSE subscribers.

    ``register``/``pump`` must run on the gateway's writer thread;
    ``_deliver`` (scheduled by ``pump``) and ``unregister`` run on the
    event loop.  ``_tips`` tracks the broker's own read cursor per app —
    it only advances in ``pump``, so a registration backlog that reads
    ahead of the tip never skips events for existing subscribers (the
    new subscriber dedupes the overlap through its ``cursor``).
    """

    def __init__(
        self,
        ecovisor: Any,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        on_queue_drop: Optional[Callable[[int], None]] = None,
    ):
        self._ecovisor = ecovisor
        self._queue_size = queue_size
        self._on_queue_drop = on_queue_drop
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._lock = threading.Lock()
        self._subs: Dict[str, List[Subscriber]] = {}
        self._tips: Dict[str, int] = {}

    def bind_loop(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop

    @property
    def open_subscribers(self) -> int:
        with self._lock:
            return sum(len(subs) for subs in self._subs.values())

    # ------------------------------------------------------------------
    # Writer-thread side
    # ------------------------------------------------------------------
    def register(
        self, app_name: str, cursor: int
    ) -> Tuple[Subscriber, List[StreamItem]]:
        """Open a subscription; returns the subscriber plus its backlog.

        Runs on the writer thread.  The backlog covers
        ``[cursor, next_cursor)`` of the journal right now — the caller
        (on the event loop) enqueues it before any ``pump`` delivery
        lands, and the subscriber's cursor is already past it so the
        next pump's overlap is skipped.  Raises
        :class:`UnknownApplicationError` for apps the journal has never
        seen, exactly like the cursor-poll route.
        """
        page = self._ecovisor.events_for(app_name, cursor=cursor)
        backlog: List[StreamItem] = []
        if page.dropped:
            backlog.append(self._dropped_notice(page))
        seq = page.next_cursor - len(page.events)
        for event in page.events:
            backlog.append(_journal_item(seq, event))
            if isinstance(event, AppEvictedEvent):
                backlog.append(self._terminal_item())
            seq += 1
        subscriber = Subscriber(app_name, page.next_cursor, self._queue_size)
        with self._lock:
            self._subs.setdefault(app_name, []).append(subscriber)
            self._tips.setdefault(app_name, page.next_cursor)
        return subscriber, backlog

    def pump(self) -> None:
        """Read journal deltas and schedule delivery; writer thread only.

        Called after every tick and every mutating dispatch, so pushed
        events trail the journal by at most one executor task.
        """
        with self._lock:
            apps = [(app, self._tips.get(app, 0)) for app in self._subs if self._subs[app]]
        if not apps or self._loop is None:
            return
        for app_name, tip in apps:
            try:
                page = self._ecovisor.events_for(app_name, cursor=tip)
            except UnknownApplicationError:
                # The retired feed aged out of the journal entirely
                # (beyond max_retired_feeds); end the stream.
                self._schedule(app_name, [self._terminal_item(reason="feed_retired")])
                continue
            items: List[StreamItem] = []
            if page.dropped:
                items.append(self._dropped_notice(page))
            seq = page.next_cursor - len(page.events)
            for event in page.events:
                items.append(_journal_item(seq, event))
                if isinstance(event, AppEvictedEvent):
                    items.append(self._terminal_item())
                seq += 1
            with self._lock:
                self._tips[app_name] = page.next_cursor
            if items:
                self._schedule(app_name, items)

    def _dropped_notice(self, page: Any) -> StreamItem:
        return _control_item(
            "journal_dropped",
            {"dropped": page.dropped, "journal_dropped": page.journal_dropped},
        )

    def _terminal_item(self, reason: str = "evicted") -> StreamItem:
        return _control_item("stream_end", {"reason": reason}, terminal=True)

    def _schedule(self, app_name: str, items: List[StreamItem]) -> None:
        self._loop.call_soon_threadsafe(self._deliver, app_name, items)

    # ------------------------------------------------------------------
    # Event-loop side
    # ------------------------------------------------------------------
    def _deliver(self, app_name: str, items: List[StreamItem]) -> None:
        with self._lock:
            subscribers = list(self._subs.get(app_name, ()))
        for subscriber in subscribers:
            before = subscriber.dropped
            for item in items:
                if item.seq is not None:
                    if item.seq < subscriber.cursor:
                        continue
                    subscriber.cursor = item.seq + 1
                subscriber._offer(item)
            lost = subscriber.dropped - before
            if lost and self._on_queue_drop is not None:
                self._on_queue_drop(lost)

    def unregister(self, subscriber: Subscriber) -> None:
        subscriber.closed = True
        with self._lock:
            subs = self._subs.get(subscriber.app_name)
            if subs and subscriber in subs:
                subs.remove(subscriber)
            if subs is not None and not subs:
                del self._subs[subscriber.app_name]
                self._tips.pop(subscriber.app_name, None)
