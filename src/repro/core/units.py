"""Units and conversions used throughout the ecovisor reproduction.

Canonical internal units, chosen once so every module agrees:

- power:            watts (W)
- energy:           watt-hours (Wh)
- carbon mass:      grams of CO2-equivalent (g)
- carbon intensity: grams of CO2-equivalent per kilowatt-hour (g/kWh)
- time:             seconds (s)

The paper's Table 1 lists kW/kWh because it targets datacenter scale; the
authors' own hardware prototype (like ours) operates at single-digit watts,
so the canonical unit here is the watt.  Helpers below convert between the
two for display and for API parity.
"""

from __future__ import annotations

import math

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0
HOURS_PER_DAY = 24.0

WATTS_PER_KILOWATT = 1000.0
WH_PER_KWH = 1000.0
MILLIGRAMS_PER_GRAM = 1000.0
JOULES_PER_WH = 3600.0


def watts_to_kilowatts(watts: float) -> float:
    """Convert a power value in watts to kilowatts."""
    return watts / WATTS_PER_KILOWATT


def kilowatts_to_watts(kilowatts: float) -> float:
    """Convert a power value in kilowatts to watts."""
    return kilowatts * WATTS_PER_KILOWATT


def wh_to_kwh(watt_hours: float) -> float:
    """Convert an energy value in watt-hours to kilowatt-hours."""
    return watt_hours / WH_PER_KWH


def kwh_to_wh(kilowatt_hours: float) -> float:
    """Convert an energy value in kilowatt-hours to watt-hours."""
    return kilowatt_hours * WH_PER_KWH


def wh_to_joules(watt_hours: float) -> float:
    """Convert an energy value in watt-hours to joules."""
    return watt_hours * JOULES_PER_WH


def joules_to_wh(joules: float) -> float:
    """Convert an energy value in joules to watt-hours."""
    return joules / JOULES_PER_WH


def seconds_to_hours(seconds: float) -> float:
    """Convert a duration in seconds to hours."""
    return seconds / SECONDS_PER_HOUR


def hours_to_seconds(hours: float) -> float:
    """Convert a duration in hours to seconds."""
    return hours * SECONDS_PER_HOUR


def energy_wh(power_w: float, duration_s: float) -> float:
    """Energy (Wh) delivered by ``power_w`` watts over ``duration_s`` seconds."""
    return power_w * seconds_to_hours(duration_s)


def power_w(energy_wh_value: float, duration_s: float) -> float:
    """Average power (W) that delivers ``energy_wh_value`` Wh in ``duration_s``."""
    if duration_s <= 0.0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    return energy_wh_value / seconds_to_hours(duration_s)


def carbon_grams(energy_wh_value: float, intensity_g_per_kwh: float) -> float:
    """Carbon mass (g) emitted by ``energy_wh_value`` Wh at the given intensity.

    Intensity is expressed in g/kWh, the unit reported by carbon information
    services such as electricityMap (paper Figure 1).
    """
    return wh_to_kwh(energy_wh_value) * intensity_g_per_kwh


def energy_cost_usd(energy_wh_value: float, price_usd_per_kwh: float) -> float:
    """Cost ($) of buying ``energy_wh_value`` Wh at the given price.

    Price is expressed in $/kWh, the unit utilities and ISOs quote
    (time-of-use tariffs, real-time wholesale prices).  This is the
    billing analogue of :func:`carbon_grams`.
    """
    return wh_to_kwh(energy_wh_value) * price_usd_per_kwh


def carbon_rate_mg_per_s(power_w_value: float, intensity_g_per_kwh: float) -> float:
    """Instantaneous carbon rate (mg/s) for a power draw at a grid intensity.

    This is the quantity the paper's Figure 7(a) plots and the rate-limiting
    policies of Section 5.2 cap (the paper uses a 20 mg/s target).
    """
    grams_per_hour = watts_to_kilowatts(power_w_value) * intensity_g_per_kwh
    return grams_per_hour * MILLIGRAMS_PER_GRAM / SECONDS_PER_HOUR


def power_for_carbon_rate(rate_mg_per_s: float, intensity_g_per_kwh: float) -> float:
    """Maximum power (W) that stays within a carbon rate at a given intensity.

    Inverse of :func:`carbon_rate_mg_per_s`; used by rate-limiting policies
    to turn a mg/s cap into a power cap.  Returns ``inf`` when the grid is
    carbon-free (any power is within the cap).
    """
    if intensity_g_per_kwh <= 0.0:
        return math.inf
    grams_per_hour = rate_mg_per_s * SECONDS_PER_HOUR / MILLIGRAMS_PER_GRAM
    return kilowatts_to_watts(grams_per_hour / intensity_g_per_kwh)


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the inclusive interval [low, high]."""
    if low > high:
        raise ValueError(f"empty clamp interval [{low}, {high}]")
    return max(low, min(high, value))


def format_duration(seconds: float) -> str:
    """Render a duration as a compact human-readable string (e.g. '1h 30m')."""
    seconds = int(round(seconds))
    days, rem = divmod(seconds, int(SECONDS_PER_DAY))
    hours, rem = divmod(rem, int(SECONDS_PER_HOUR))
    minutes, secs = divmod(rem, int(SECONDS_PER_MINUTE))
    parts = []
    if days:
        parts.append(f"{days}d")
    if hours:
        parts.append(f"{hours}h")
    if minutes:
        parts.append(f"{minutes}m")
    if secs or not parts:
        parts.append(f"{secs}s")
    return " ".join(parts)
