"""Typed per-application signal subscriptions (API v1).

The Table 2 library exposed change notifications as five ad-hoc
``notify_*`` methods, each hand-rolling its own filtering closure over
the ecovisor's :class:`~repro.core.events.EventBus`.  API v1 replaces
that plumbing with one typed subscription surface::

    sub = api.signals.on(CarbonChange, callback)
    api.signals.on(SolarChange, callback, threshold=2.0)   # |delta| >= 2 W
    api.signals.on(PriceChange, callback, debounce_s=600)  # >= 10 min apart
    sub.cancel()

Signal types *are* the event dataclasses (re-exported here under their
v1 names, e.g. ``CarbonChange is CarbonChangeEvent``), so existing
subscribers keep working and the bus stays a single dispatch substrate.
The bus adds, per subscription:

- **application scoping** — signals carrying an ``app_name`` field
  (solar and battery signals) are delivered only for the owning app;
- **threshold** — change signals are dropped while the absolute change
  is below the threshold (in the signal's native delta unit);
- **debounce** — deliveries are separated by at least ``debounce_s`` of
  simulation time.

The legacy ``notify_*`` methods on :class:`~repro.core.library.
AppEnergyLibrary` are thin deprecated delegates onto this bus.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Type

from repro.core.events import (
    AppAdmittedEvent,
    AppEvictedEvent,
    BatteryEmptyEvent,
    BatteryFullEvent,
    CarbonChangeEvent,
    Event,
    EventBus,
    PriceChangeEvent,
    ShareChangedEvent,
    SolarChangeEvent,
    TickEvent,
)

# v1 signal names; each *is* the corresponding event type.
Tick = TickEvent
SolarChange = SolarChangeEvent
CarbonChange = CarbonChangeEvent
PriceChange = PriceChangeEvent
BatteryFull = BatteryFullEvent
BatteryEmpty = BatteryEmptyEvent
# v1.1 lifecycle signals (control plane: dynamic tenancy).
AppAdmitted = AppAdmittedEvent
AppEvicted = AppEvictedEvent
ShareChanged = ShareChangedEvent

#: Signals that support ``threshold=`` and the attribute holding their
#: change magnitude.
_DELTA_FIELDS: Dict[Type[Event], str] = {
    SolarChangeEvent: "delta_w",
    CarbonChangeEvent: "delta_g_per_kwh",
    PriceChangeEvent: "delta_usd_per_kwh",
}


class Subscription:
    """Handle for one active signal subscription; ``cancel()`` detaches it."""

    def __init__(
        self,
        bus: EventBus,
        signal_type: Type[Event],
        dispatcher: Callable[[Event], None],
        owner: Optional["SignalBus"] = None,
    ):
        self._bus = bus
        self._signal_type = signal_type
        self._dispatcher = dispatcher
        self._owner = owner
        self._active = True

    @property
    def signal_type(self) -> Type[Event]:
        return self._signal_type

    @property
    def active(self) -> bool:
        return self._active

    def cancel(self) -> None:
        """Stop delivering this subscription's signal; idempotent.

        Also releases the subscription (and its dispatcher closure)
        from the owning :class:`SignalBus`, so churn-heavy subscribe/
        cancel patterns do not accumulate dead entries.
        """
        if self._active:
            self._bus.unsubscribe(self._signal_type, self._dispatcher)
            self._active = False
            if self._owner is not None:
                self._owner._release(self)


class SignalBus:
    """One application's typed view onto the ecovisor event bus."""

    def __init__(self, bus: EventBus, app_name: str):
        self._bus = bus
        self._app_name = app_name
        self._subscriptions: List[Subscription] = []

    @property
    def app_name(self) -> str:
        return self._app_name

    @property
    def subscriptions(self) -> List[Subscription]:
        """Active subscriptions made through this bus."""
        return [s for s in self._subscriptions if s.active]

    def on(
        self,
        signal_type: Type[Event],
        callback: Callable[[Event], None],
        *,
        threshold: Optional[float] = None,
        debounce_s: Optional[float] = None,
    ) -> Subscription:
        """Subscribe ``callback`` to ``signal_type`` for this application.

        ``threshold`` filters change signals whose absolute delta is
        below it; ``debounce_s`` enforces a minimum simulation-time gap
        between deliveries.  Returns a cancellable :class:`Subscription`.
        """
        if not isinstance(signal_type, type) or not issubclass(signal_type, Event):
            raise TypeError(f"not a signal type: {signal_type!r}")
        delta_field = _DELTA_FIELDS.get(signal_type)
        if threshold is not None:
            if delta_field is None:
                raise ValueError(
                    f"{signal_type.__name__} does not support threshold filtering"
                )
            if threshold < 0:
                raise ValueError(f"threshold must be >= 0, got {threshold}")
        if debounce_s is not None and debounce_s < 0:
            raise ValueError(f"debounce_s must be >= 0, got {debounce_s}")

        app_name = self._app_name
        last_delivery_s: List[float] = []  # empty until first delivery

        def dispatcher(event: Event) -> None:
            event_app = getattr(event, "app_name", None)
            if event_app is not None and event_app != app_name:
                return
            if threshold is not None:
                if abs(getattr(event, delta_field)) < threshold:
                    return
            if debounce_s is not None and last_delivery_s:
                if event.time_s - last_delivery_s[0] < debounce_s:
                    return
            if debounce_s is not None:
                if last_delivery_s:
                    last_delivery_s[0] = event.time_s
                else:
                    last_delivery_s.append(event.time_s)
            callback(event)

        self._bus.subscribe(signal_type, dispatcher)
        subscription = Subscription(self._bus, signal_type, dispatcher, owner=self)
        self._subscriptions.append(subscription)
        return subscription

    def _release(self, subscription: Subscription) -> None:
        if subscription in self._subscriptions:
            self._subscriptions.remove(subscription)

    def off(self, subscription: Subscription) -> None:
        """Cancel a subscription previously returned by :meth:`on`."""
        subscription.cancel()

    def cancel_all(self) -> None:
        """Cancel every active subscription made through this bus."""
        for subscription in list(self._subscriptions):
            subscription.cancel()
        self._subscriptions.clear()


__all__ = [
    "AppAdmitted",
    "AppEvicted",
    "BatteryEmpty",
    "BatteryFull",
    "CarbonChange",
    "PriceChange",
    "ShareChanged",
    "SignalBus",
    "SolarChange",
    "Subscription",
    "Tick",
]
