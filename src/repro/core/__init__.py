"""Core ecovisor: virtual energy systems, accounting, and the narrow API.

Attribute access is lazy (PEP 562): importing a leaf module such as
``repro.core.errors`` must not pull in the whole ecovisor stack, because
substrate packages (energy, carbon, cluster, telemetry) depend on the
leaf modules while the ecovisor depends on the substrates.
"""

from __future__ import annotations

import importlib
from typing import Any

_EXPORTS = {
    "AppAccount": "repro.core.accounting",
    "CarbonLedger": "repro.core.accounting",
    "TickSettlement": "repro.core.accounting",
    "EcovisorAPI": "repro.core.api",
    "connect": "repro.core.api",
    "DEFAULT_TICK_INTERVAL_S": "repro.core.clock",
    "SimulationClock": "repro.core.clock",
    "TickInfo": "repro.core.clock",
    "BatteryConfig": "repro.core.config",
    "CarbonServiceConfig": "repro.core.config",
    "ClusterConfig": "repro.core.config",
    "EcovisorConfig": "repro.core.config",
    "GridConfig": "repro.core.config",
    "ServerConfig": "repro.core.config",
    "ShareConfig": "repro.core.config",
    "SolarConfig": "repro.core.config",
    "Ecovisor": "repro.core.ecovisor",
    "AppAdmittedEvent": "repro.core.events",
    "AppEvictedEvent": "repro.core.events",
    "ShareChangedEvent": "repro.core.events",
    "event_from_dict": "repro.core.events",
    "event_to_dict": "repro.core.events",
    "EventJournal": "repro.core.journal",
    "JournalPage": "repro.core.journal",
    "BatteryEmptyEvent": "repro.core.events",
    "BatteryFullEvent": "repro.core.events",
    "CarbonChangeEvent": "repro.core.events",
    "Event": "repro.core.events",
    "EventBus": "repro.core.events",
    "ResourceRevocationEvent": "repro.core.events",
    "SolarChangeEvent": "repro.core.events",
    "TickEvent": "repro.core.events",
    "AppEnergyLibrary": "repro.core.library",
    "BatteryState": "repro.core.state",
    "EnergyState": "repro.core.state",
    "AppAdmitted": "repro.core.signals",
    "AppEvicted": "repro.core.signals",
    "ShareChanged": "repro.core.signals",
    "BatteryEmpty": "repro.core.signals",
    "BatteryFull": "repro.core.signals",
    "CarbonChange": "repro.core.signals",
    "PriceChange": "repro.core.signals",
    "SignalBus": "repro.core.signals",
    "SolarChange": "repro.core.signals",
    "Subscription": "repro.core.signals",
    "VirtualBattery": "repro.core.virtual_battery",
    "scaled_battery_config": "repro.core.virtual_battery",
    "VirtualEnergySystem": "repro.core.virtual_energy_system",
    "EcovisorError": "repro.core.errors",
    "ConfigurationError": "repro.core.errors",
    "AuthorizationError": "repro.core.errors",
    "EnergyConservationError": "repro.core.errors",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    module_path = _EXPORTS.get(name)
    if module_path is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module = importlib.import_module(module_path)
    return getattr(module, name)


def __dir__() -> list:
    return __all__
