"""The ecovisor's application API (paper Table 1, snapshot-first v1).

Each application receives an :class:`EcovisorAPI` bound to its name; every
call is authorization-checked so an application can only observe and
control its *own* virtual energy system and containers.

The v1 surface is snapshot-first:

- :meth:`EcovisorAPI.state` returns the application's immutable per-tick
  :class:`~repro.core.state.EnergyState` — **one** consistent observation
  (solar, grid, carbon, price, battery, per-container power, cumulative
  ledger figures) computed once per tick by the ecovisor and shared by
  reference with every consumer.
- :attr:`EcovisorAPI.signals` is the typed subscription bus
  (``api.signals.on(CarbonChange, cb, threshold=..., debounce_s=...)``).
- The Table 1 *setters* are unchanged.
- The Table 1 *getters* remain as thin deprecated delegates onto the
  snapshot so pre-v1 code keeps passing; before the first tick (no
  snapshot yet) they fall back to the equivalent live reads.

Units: the paper's table lists kW because it targets datacenter scale; the
prototype cluster (like ours) operates at watt scale, so this API speaks
watts and watt-hours throughout.  Conversions live in
:mod:`repro.core.units`.

Beyond Table 1, the API exposes the container/resource management calls
the paper says applications may also use ("applications may horizontally
scale their number of containers, or the resources allocated to each
container", Section 3.1): ``launch_container``, ``stop_container``,
``scale_to`` and ``set_container_cores``.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.cluster.container import Container
from repro.core.ecovisor import Ecovisor
from repro.core.signals import SignalBus
from repro.core.state import EnergyState


class EcovisorAPI:
    """Per-application handle onto the ecovisor (Table 1 / API v1).

    ``use_snapshots=False`` forces every deprecated getter down the
    legacy live-read path — the pre-v1 behaviour, kept addressable so
    ``benchmarks/bench_api_hotpath.py`` can measure the getter-storm
    cost against the snapshot path.
    """

    def __init__(
        self, ecovisor: Ecovisor, app_name: str, use_snapshots: bool = True
    ):
        self._ecovisor = ecovisor
        self._app_name = app_name
        self._ves = ecovisor.ves_for(app_name)
        self._platform = ecovisor.platform
        self._use_snapshots = use_snapshots
        self._signals: Optional[SignalBus] = None
        # Handle-local role-list memo: the workload and policy consult
        # the worker pool several times per tick, and this handle is
        # pinned to one app — so a generation-checked dict here answers
        # repeats without re-entering the platform's shared cache.
        self._role_lists: dict = {}
        self._rl_version = -1
        self._rl_epoch = -1

    @property
    def app_name(self) -> str:
        return self._app_name

    @property
    def ecovisor(self) -> Ecovisor:
        """Escape hatch for library layers; applications use the API."""
        return self._ecovisor

    # ------------------------------------------------------------------
    # Snapshot observation (API v1)
    # ------------------------------------------------------------------
    def state(self) -> EnergyState:
        """The application's immutable per-tick energy state snapshot.

        During the tick upcall window the snapshot holds this tick's
        environment signals and the previous settlement's battery/grid/
        ledger figures; after settlement it holds the settled figures
        (``state().settled`` is True).  Repeated calls within a phase
        return the same instance.
        """
        return self._ecovisor.state_for(self._app_name)

    @property
    def signals(self) -> SignalBus:
        """Typed signal subscriptions scoped to this application.

        Obtained through the ecovisor so the subscriptions are
        cancelled if the application is evicted.
        """
        if self._signals is None:
            self._signals = self._ecovisor.signal_bus_for(self._app_name)
        return self._signals

    def _snapshot(self) -> Optional[EnergyState]:
        """The stored tick snapshot, or None (pre-tick / live mode)."""
        if not self._use_snapshots:
            return None
        return self._ecovisor.latest_state(self._app_name)

    # ------------------------------------------------------------------
    # Setters (Table 1)
    # ------------------------------------------------------------------
    def set_container_powercap(
        self, container_id: str, watts: Optional[float]
    ) -> None:
        """Set a container's power cap (None removes the cap)."""
        self._ecovisor.set_container_powercap(self._app_name, container_id, watts)

    def set_battery_charge_rate(self, watts: float) -> None:
        """Set the virtual battery's grid-supplemented charge rate until full."""
        self._require_battery().set_charge_rate(watts)

    def set_battery_max_discharge(self, watts: float) -> None:
        """Set the maximum rate at which the virtual battery may discharge."""
        self._require_battery().set_max_discharge(watts)

    # ------------------------------------------------------------------
    # Getters (Table 1) — deprecated delegates onto the snapshot
    # ------------------------------------------------------------------
    def get_solar_power(self) -> float:
        """Current virtual solar power output (W).

        .. deprecated:: v1  Use ``state().solar_power_w``.
        """
        snapshot = self._snapshot()
        if snapshot is not None:
            return snapshot.solar_power_w
        return self._ves.solar_power_w

    def get_grid_power(self) -> float:
        """Virtual grid power usage over the last settled tick (W).

        .. deprecated:: v1  Use ``state().grid_power_w``.
        """
        snapshot = self._snapshot()
        if snapshot is not None:
            return snapshot.grid_power_w
        return self._ves.grid_power_w

    def get_grid_carbon(self) -> float:
        """Current grid carbon-intensity (g CO2 / kWh).

        .. deprecated:: v1  Use ``state().grid_carbon_g_per_kwh``.
        """
        snapshot = self._snapshot()
        if snapshot is not None:
            return snapshot.grid_carbon_g_per_kwh
        return self._ecovisor.current_carbon_g_per_kwh

    def get_grid_price(self) -> float:
        """Current grid electricity price ($/kWh; 0.0 without a market).

        .. deprecated:: v1  Use ``state().grid_price_usd_per_kwh``.
        """
        snapshot = self._snapshot()
        if snapshot is not None:
            return snapshot.grid_price_usd_per_kwh
        return self._ecovisor.current_price_usd_per_kwh

    def get_energy_cost(self) -> float:
        """Cumulative grid cost ($) billed to this application.

        .. deprecated:: v1  Use ``state().total_cost_usd``.
        """
        snapshot = self._snapshot()
        if snapshot is not None:
            return snapshot.total_cost_usd
        return self._ecovisor.ledger.app_cost_usd(self._app_name)

    def get_battery_discharge_rate(self) -> float:
        """Battery discharge power over the last settled tick (W).

        .. deprecated:: v1  Use ``state().battery`` (None without a
        battery share) or the zero-default
        ``state().battery_discharge_rate_w``.
        """
        snapshot = self._snapshot()
        if snapshot is not None:
            return snapshot.battery_discharge_rate_w
        if self._ves.battery is None:
            return 0.0
        return self._ves.battery.last_discharge_w

    def get_battery_charge_level(self) -> float:
        """Usable energy stored in the virtual battery (Wh).

        .. deprecated:: v1  Use ``state().battery`` (None without a
        battery share) or the zero-default
        ``state().battery_charge_level_wh``.
        """
        snapshot = self._snapshot()
        if snapshot is not None:
            return snapshot.battery_charge_level_wh
        if self._ves.battery is None:
            return 0.0
        return self._ves.battery.usable_wh

    def get_battery_capacity(self) -> float:
        """Usable capacity of the virtual battery (Wh).

        .. deprecated:: v1  Use ``state().battery`` (None without a
        battery share) or the zero-default
        ``state().battery_capacity_wh``.
        """
        snapshot = self._snapshot()
        if snapshot is not None:
            return snapshot.battery_capacity_wh
        if self._ves.battery is None:
            return 0.0
        return self._ves.battery.usable_capacity_wh

    def get_container_powercap(self, container_id: str) -> Optional[float]:
        """A container's current power cap (W); None when uncapped.

        A knob read (not a measurement): always served live so caps set
        moments earlier are immediately visible.
        """
        container = self._owned(container_id)
        return container.power_cap_w

    def get_container_power(self, container_id: str) -> float:
        """A container's most recent measured power draw (W).

        .. deprecated:: v1  Use ``state().container_power_w[cid]``.
        Containers launched after the tick's snapshot was built fall
        back to a live measurement.
        """
        self._owned(container_id)
        snapshot = self._snapshot()
        if snapshot is not None and container_id in snapshot.container_power_w:
            return snapshot.container_power_w[container_id]
        return self._ecovisor.platform.container_power_w(container_id)

    # ------------------------------------------------------------------
    # Asynchronous notification (Table 1)
    # ------------------------------------------------------------------
    def register_tick(self, callback: Callable[..., None]) -> None:
        """Register the application's ``tick()`` upcall.

        The ecovisor invokes the callback once per tick interval, before
        the interval's energy is settled, so adjustments made inside the
        callback govern the upcoming interval.  Callbacks accepting two
        positional parameters receive ``(tick, state)``; single-parameter
        callbacks keep the legacy ``(tick)`` shape.
        """
        self._ecovisor.register_tick_callback(self._app_name, callback)

    # ------------------------------------------------------------------
    # Container and resource management (Section 3.1)
    # ------------------------------------------------------------------
    def launch_container(
        self, cores: float, gpu: bool = False, role: str = Container.DEFAULT_ROLE
    ) -> Container:
        """Horizontally scale up by one container."""
        return self._ecovisor.launch_container(
            self._app_name, cores, gpu=gpu, role=role
        )

    def stop_container(self, container_id: str) -> None:
        """Horizontally scale down by stopping one owned container."""
        self._ecovisor.stop_container(self._app_name, container_id)

    def scale_to(
        self,
        count: int,
        cores: float,
        gpu: bool = False,
        role: str = Container.DEFAULT_ROLE,
    ) -> List[Container]:
        """Horizontally scale the ``role`` pool to exactly ``count``."""
        return self._ecovisor.scale_app_to(
            self._app_name, count, cores, gpu=gpu, role=role
        )

    def set_container_cores(self, container_id: str, cores: float) -> None:
        """Vertically scale an owned container's core allocation."""
        self._ecovisor.set_container_cores(self._app_name, container_id, cores)

    def list_containers(self, role: Optional[str] = None) -> List[Container]:
        """The application's running containers (optionally one role's).

        The role-filtered form returns the platform's memoized list —
        treat it as read-only (every policy and workload consults it
        several times per tick on the fleet hot path).
        """
        if role is not None:
            platform = self._platform
            # Private generation reads: this check runs a few thousand
            # times per tick at fleet scale, where even the property
            # indirection shows up.
            version = platform._version
            if (
                self._rl_version != version
                or self._rl_epoch != Container._runstate_epoch
            ):
                self._role_lists = {}
                self._rl_version = version
                self._rl_epoch = Container._runstate_epoch
            cached = self._role_lists.get(role)
            if cached is None:
                cached = self._role_lists[role] = (
                    platform.running_containers_for_role(self._app_name, role)
                )
            return cached
        return self._platform.running_containers_for(self._app_name)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _owned(self, container_id: str) -> Container:
        return self._ecovisor.owned_container(self._app_name, container_id)

    def _require_battery(self):
        battery = self._ves.battery
        if battery is None:
            from repro.core.errors import ConfigurationError

            raise ConfigurationError(
                f"application {self._app_name!r} has no virtual battery share"
            )
        return battery

    def __repr__(self) -> str:
        return f"EcovisorAPI(app={self._app_name!r})"


def connect(
    ecovisor: Ecovisor, app_name: str, use_snapshots: bool = True
) -> EcovisorAPI:
    """Obtain the API handle for a registered application."""
    return EcovisorAPI(ecovisor, app_name, use_snapshots=use_snapshots)
