"""Columnar fleet state: struct-of-arrays over the registered apps.

:mod:`repro.core.tracecache` vectorizes the *trace* dimension (one primed
array entry per tick per signal).  This module extends the same idiom to
the *app* dimension: one preallocated numpy row per registered
application for solar allocation, grid draw, and the cumulative ledger
figures, updated in bulk inside ``Ecovisor.begin_tick``/``settle``
instead of once per app per tick.

Design rules (pinned by ``tests/integration/test_columnar_parity.py``):

- **Byte parity.**  Every float the columnar path produces — snapshot
  fields, settlements, telemetry points, event payloads — must be
  bit-identical to the per-app object path.  The kernel therefore
  replays the exact arithmetic of ``VirtualEnergySystem.settle``,
  ``Battery.charge``/``discharge``, and
  ``ServerPowerModel.container_power`` (same operand order, same
  associativity); the stateful battery figures (level, throughput
  meters, last charge/discharge) are written back into each
  ``VirtualBattery`` after the bulk pass so the objects stay the source
  of truth at tick boundaries.
- **Array identity.**  Rows live in persistent arrays; admission
  acquires a row from a free list, eviction releases it, and growth
  uses ``ndarray.resize`` so the arrays keep their identity.  Snapshots
  always hold fancy-indexed *copies*, never views, so growth can never
  dangle a consumer.
- **Lazy materialization.**  Per-app ``EnergyState`` objects are built
  only at the observation boundary (``EcovisorAPI.state()``, signal
  callbacks, REST, telemetry export) as
  :class:`~repro.core.state.RowEnergyState` views over a
  :class:`FleetSnapshot`.  Telemetry and ledger writes are buffered as
  :class:`_TickRecord` objects and flushed on first read through the
  database/ledger flush hooks.
"""

from __future__ import annotations

from operator import attrgetter, itemgetter
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.container import Container
from repro.core.accounting import TickSettlement
from repro.core.events import (
    BatteryEmptyEvent,
    BatteryFullEvent,
    Event,
    SolarChangeEvent,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cop import ContainerOrchestrationPlatform
    from repro.core.ecovisor import Ecovisor

#: Initial row capacity; arrays double (in place) when the fleet outgrows it.
INITIAL_CAPACITY = 64


class _ContainerCache:
    """Vectorized view of the platform's container population.

    Rebuilt whenever the structural cache key — ``(platform.version,
    Container._mutation_epoch)`` — changes (launch/stop/start/resize);
    per-tick quantities (demand and cap utilizations) are re-read on
    every :meth:`powers` call, mirroring the scalar power model.
    """

    __slots__ = (
        "key",
        "clist",
        "ids",
        "cf",
        "cf_idle",
        "cpu_range",
        "gpu_range",
        "run_mask",
        "run_epoch",
        "power_mask",
        "gpu_mask",
        "positions",
        "cont_ids",
        "running_positions",
        "baseline_w",
    )

    def __init__(
        self, platform: "ContainerOrchestrationPlatform", key: Tuple[int, int]
    ):
        self.key = key
        clist = platform.containers()
        self.clist = clist
        self.ids = tuple(c.id for c in clist)
        server = platform.config.server
        n = len(clist)
        cf = np.fromiter(map(attrgetter("cores"), clist), dtype=float, count=n)
        # Same per-element division as the scalar model's core_fraction.
        cf = cf / server.cores
        self.cf = cf
        self.cf_idle = cf * server.idle_power_w
        self.cpu_range = server.max_cpu_power_w - server.idle_power_w
        self.gpu_range = (
            server.max_gpu_power_w - server.max_cpu_power_w
            if server.has_gpu
            else 0.0
        )
        run = np.fromiter(
            map(attrgetter("is_running"), clist), dtype=bool, count=n
        )
        self.run_mask = run
        self.run_epoch = Container._runstate_epoch
        placed = np.fromiter(
            (c.server_name is not None for c in clist), dtype=bool, count=n
        )
        # The scalar path attributes 0.0 W to stopped or unplaced
        # containers; running-but-unplaced ones still appear in per-app
        # readings (with 0.0), hence two distinct masks.
        self.power_mask = run & placed
        self.gpu_mask = np.fromiter(
            map(attrgetter("has_gpu"), clist), dtype=bool, count=n
        )
        self._index_running(run)
        self.baseline_w = platform.baseline_power_w()

    def _index_running(self, run: np.ndarray) -> None:
        """Per-app position/id maps over the running subset of ``clist``."""
        clist = self.clist
        running_positions = np.flatnonzero(run).tolist()
        positions: Dict[str, List[int]] = {}
        cont_ids: Dict[str, List[str]] = {}
        for p in running_positions:
            c = clist[p]
            name = c._app_name
            positions.setdefault(name, []).append(p)
            cont_ids.setdefault(name, []).append(c._id)
        self.positions: Dict[str, Tuple[int, ...]] = {
            name: tuple(v) for name, v in positions.items()
        }
        self.cont_ids: Dict[str, Tuple[str, ...]] = {
            name: tuple(v) for name, v in cont_ids.items()
        }
        self.running_positions = tuple(running_positions)

    @classmethod
    def extended(
        cls,
        prev: "_ContainerCache",
        platform: "ContainerOrchestrationPlatform",
        key: Tuple[int, int],
    ) -> Optional["_ContainerCache"]:
        """Append-only rebuild: reuse ``prev`` for the common launch case.

        An unchanged mutation epoch means no container stopped, started,
        or resized since ``prev`` was built — the platform's population
        only grew, so ``prev``'s containers are an exact prefix and every
        derived array extends instead of rebuilding (the launch ramp of
        a large fleet rebuilds this cache every tick otherwise).  Returns
        None when the prefix invariant does not hold.
        """
        clist = platform.containers()
        old_n = len(prev.clist)
        n = len(clist)
        if n < old_n or (old_n and clist[old_n - 1] is not prev.clist[-1]):
            return None
        new = clist[old_n:]
        obj = cls.__new__(cls)
        obj.key = key
        obj.clist = clist
        obj.ids = prev.ids + tuple(c.id for c in new)
        server = platform.config.server
        k = len(new)
        cf_new = (
            np.fromiter((c.cores for c in new), dtype=float, count=k)
            / server.cores
        )
        obj.cf = np.concatenate([prev.cf, cf_new])
        obj.cf_idle = np.concatenate(
            [prev.cf_idle, cf_new * server.idle_power_w]
        )
        obj.cpu_range = prev.cpu_range
        obj.gpu_range = prev.gpu_range
        run_new = np.fromiter(
            (c.is_running for c in new), dtype=bool, count=k
        )
        placed_new = np.fromiter(
            (c.server_name is not None for c in new), dtype=bool, count=k
        )
        obj.run_mask = np.concatenate([prev.run_mask, run_new])
        obj.run_epoch = Container._runstate_epoch
        obj.power_mask = np.concatenate(
            [prev.power_mask, run_new & placed_new]
        )
        obj.gpu_mask = np.concatenate(
            [
                prev.gpu_mask,
                np.fromiter((c.has_gpu for c in new), dtype=bool, count=k),
            ]
        )
        positions = dict(prev.positions)
        cont_ids = dict(prev.cont_ids)
        run_pos = list(prev.running_positions)
        for p in range(old_n, n):
            c = clist[p]
            if not c.is_running:
                continue
            run_pos.append(p)
            name = c.app_name
            positions[name] = positions.get(name, ()) + (p,)
            cont_ids[name] = cont_ids.get(name, ()) + (c.id,)
        obj.positions = positions
        obj.cont_ids = cont_ids
        obj.running_positions = tuple(run_pos)
        obj.baseline_w = platform.baseline_power_w()
        return obj

    @classmethod
    def resized(
        cls,
        prev: "_ContainerCache",
        platform: "ContainerOrchestrationPlatform",
        key: Tuple[int, int],
    ) -> "_ContainerCache":
        """Same-population rebuild: only the mutable columns re-derive.

        An unchanged topology version means no container launched or was
        removed since ``prev`` — the population and its order are exactly
        ``prev.clist`` — so identity-derived fields (ids, GPU mask) carry
        over, and when the running set is also unchanged (the common
        resize-only scale) the per-app position maps carry over too.
        """
        clist = prev.clist
        n = len(clist)
        obj = cls.__new__(cls)
        obj.key = key
        obj.clist = clist
        obj.ids = prev.ids
        server = platform.config.server
        cf = np.fromiter(map(attrgetter("cores"), clist), dtype=float, count=n)
        cf = cf / server.cores
        obj.cf = cf
        obj.cf_idle = cf * server.idle_power_w
        obj.cpu_range = prev.cpu_range
        obj.gpu_range = prev.gpu_range
        obj.gpu_mask = prev.gpu_mask
        run_epoch = Container._runstate_epoch
        obj.run_epoch = run_epoch
        if prev.run_epoch == run_epoch:
            # Resize-only epoch: no container started or stopped, so the
            # run mask — and every index derived from it — carries over.
            obj.run_mask = prev.run_mask
            obj.power_mask = prev.power_mask
            obj.positions = prev.positions
            obj.cont_ids = prev.cont_ids
            obj.running_positions = prev.running_positions
        else:
            run = np.fromiter(
                map(attrgetter("is_running"), clist), dtype=bool, count=n
            )
            obj.run_mask = run
            placed = np.fromiter(
                (c.server_name is not None for c in clist),
                dtype=bool,
                count=n,
            )
            obj.power_mask = run & placed
            if np.array_equal(run, prev.run_mask):
                obj.positions = prev.positions
                obj.cont_ids = prev.cont_ids
                obj.running_positions = prev.running_positions
            else:
                obj._index_running(run)
        obj.baseline_w = platform.baseline_power_w()
        return obj

    def powers(self) -> np.ndarray:
        """Attributed power of every container, one vectorized pass.

        Bit-identical to ``ServerPowerModel.container_power``: the
        breakdown sums as ``(idle + cpu) + gpu`` with ``cpu = (cf * u) *
        range``, and utilizations are already clamped at their setters.
        """
        clist = self.clist
        n = len(clist)
        du = np.fromiter(
            (c.demand_utilization for c in clist), dtype=float, count=n
        )
        cap = np.fromiter(
            (c.cap_utilization for c in clist), dtype=float, count=n
        )
        u = np.where(self.power_mask, np.minimum(du, cap), 0.0)
        gu = np.where(self.gpu_mask, u, 0.0)
        p = (self.cf_idle + (self.cf * u) * self.cpu_range) + (
            self.cf * gu
        ) * self.gpu_range
        return np.where(self.power_mask, p, 0.0)


class FleetSnapshot:
    """One tick phase's dense observation of the whole fleet.

    Built twice per tick (post-begin, post-settle); every per-app
    :class:`~repro.core.state.RowEnergyState` view of the phase indexes
    into this one object.  All arrays are copies (fancy-indexed out of
    the persistent rows), so later ticks and row churn cannot mutate a
    retained snapshot's scalar fields.

    Container readings materialize lazily on a begin-phase snapshot
    (policies rarely read them mid-upcall) and are captured eagerly at
    settlement, where the readings are already in hand.
    """

    __slots__ = (
        "epoch",
        "names",
        "apps",
        "tick_index",
        "time_s",
        "duration_s",
        "carbon",
        "price",
        "has_market",
        "settled",
        "solar",
        "grid",
        "tot_e",
        "tot_c",
        "tot_cost",
        "knob_target",
        "knob_maxdis",
        "fleet",
        "platform",
        "_cc",
        "_powers_list",
    )

    def __init__(
        self,
        *,
        epoch: int,
        names: List[str],
        apps: list,
        tick_index: int,
        time_s: float,
        duration_s: float,
        carbon: float,
        price: float,
        has_market: bool,
        settled: bool,
        solar: np.ndarray,
        grid: np.ndarray,
        tot_e: np.ndarray,
        tot_c: np.ndarray,
        tot_cost: np.ndarray,
        knob_target: np.ndarray,
        knob_maxdis: np.ndarray,
        fleet: "FleetArrays",
        platform: "ContainerOrchestrationPlatform",
        cc: Optional[_ContainerCache],
        powers_list: Optional[List[float]],
    ):
        self.epoch = epoch
        self.names = names
        self.apps = apps
        self.tick_index = tick_index
        self.time_s = time_s
        self.duration_s = duration_s
        self.carbon = carbon
        self.price = price
        self.has_market = has_market
        self.settled = settled
        self.solar = solar
        self.grid = grid
        self.tot_e = tot_e
        self.tot_c = tot_c
        self.tot_cost = tot_cost
        self.knob_target = knob_target
        self.knob_maxdis = knob_maxdis
        self.fleet = fleet
        self.platform = platform
        self._cc = cc
        self._powers_list = powers_list

    def container_readings_for(
        self, index: int
    ) -> Tuple[Tuple[str, ...], List[float]]:
        """(ids, watts) of one app's running containers for this phase."""
        cc = self._cc
        if cc is None:
            # Begin-phase snapshot: materialize on first access, at
            # access-time utilizations (the documented lazy-view rule).
            cc = self._cc = self.fleet.container_cache(self.platform)
            self._powers_list = cc.powers().tolist()
        name = self.names[index]
        ids = cc.cont_ids.get(name)
        if ids is None:
            return (), []
        powers = self._powers_list
        return ids, [powers[p] for p in cc.positions[name]]


class _TickRecord:
    """One settled tick's buffered telemetry and ledger payload.

    Everything the object path writes eagerly into the time-series
    database and carbon ledger during ``settle`` is parked here instead
    and replayed (in tick order) by ``Ecovisor._flush_pending`` on the
    first database/ledger read.  Per-app figures stay as the settle
    kernel's ndarrays; ``tolist`` is deferred to flush time.
    """

    __slots__ = (
        "time_s",
        "duration_s",
        "carbon",
        "price",
        "has_market",
        "names",
        "demand_w",
        "counts",
        "demand_wh",
        "served",
        "unmet",
        "solar_avail",
        "solar_used",
        "s2b",
        "curtailed",
        "battery_wh",
        "grid_load",
        "g2b",
        "carbon_g",
        "cost",
        "last_grid",
        "settlements",
        "batt_tel",
        "cont_ids",
        "cont_powers",
        "cont_carbon",
        "cluster_power",
    )


class FleetArrays:
    """Persistent struct-of-arrays fleet state plus the bulk tick kernel.

    Row lifecycle: :meth:`acquire_row` (admission) pops from a LIFO free
    list, :meth:`release_row` (eviction) pushes back — an evict-then-
    readmit reuses the hottest row.  :meth:`_grow` doubles capacity in
    place (``ndarray.resize``), preserving array identity.

    ``dirty`` marks the dense per-app caches (row gather indices, solar
    fractions, thresholds, grid shares) stale; any admission, eviction,
    or share rebalance sets it and the next tick phase re-derives them
    in one :meth:`refresh` pass, bumping ``epoch`` so stale snapshots
    are never indexed with fresh row assignments.
    """

    def __init__(self, capacity: int = INITIAL_CAPACITY):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.solar_w = np.zeros(capacity)
        self.grid_w = np.zeros(capacity)
        self.prev_solar = np.zeros(capacity)
        self.tot_e = np.zeros(capacity)
        self.tot_c = np.zeros(capacity)
        self.tot_cost = np.zeros(capacity)
        self._free = list(range(capacity - 1, -1, -1))
        self.dirty = True
        self.epoch = 0
        # Row-lifecycle counters, read by the metrics registry through
        # collect-time callbacks (no metric objects in this hot path).
        # "Reused" means the acquired row had been released before —
        # the free-list recycling an evict-then-readmit churn exercises.
        self.rows_acquired = 0
        self.rows_released = 0
        self.rows_reused = 0
        self.grow_count = 0
        self._released_ever: set = set()
        self.pending: List[_TickRecord] = []
        self.current_snap: Optional[FleetSnapshot] = None
        self._cc: Optional[_ContainerCache] = None
        # Dense per-app caches, rebuilt by refresh() (insertion order).
        self.apps: list = []
        self.names: List[str] = []
        self.rows = np.zeros(0, dtype=np.intp)
        self.frac_solar = np.zeros(0)
        self.thresh = np.zeros(0)
        self.has_solar = np.zeros(0, dtype=bool)
        self.grid_share_w = np.zeros(0)
        self.batt_apps: list = []
        self.batt_objs: list = []
        # Battery sub-fleet caches (parallel to batt_apps): config-derived
        # scalars are fixed for a VirtualBattery's lifetime, and any swap
        # (admission, share rebalance) sets `dirty`, so they refresh with
        # the other dense caches.  Live state (level, knobs) is gathered
        # per settle instead.
        self.batt_idx = np.zeros(0, dtype=np.intp)
        self.batt_vbs: list = []
        self.batt_cap = np.zeros(0)
        self.batt_floor = np.zeros(0)
        self.batt_ceff = np.zeros(0)
        self.batt_deff = np.zeros(0)
        self.batt_maxc = np.zeros(0)
        self.batt_maxd = np.zeros(0)
        # Per-(container cache, names) gather plan for settle(); see
        # _gather_plan().
        # Keyed on the *positions* dict identity, not the cache object:
        # resize-only cache rebuilds carry the position maps over
        # unchanged, and the gather plan depends on nothing else.
        self._plan_positions: Optional[dict] = None
        self._plan_names: Optional[List[str]] = None
        self._plan: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Row lifecycle
    # ------------------------------------------------------------------
    def acquire_row(self) -> int:
        if not self._free:
            self._grow()
        row = self._free.pop()
        self.rows_acquired += 1
        if row in self._released_ever:
            self.rows_reused += 1
        return row

    def release_row(self, row: int) -> None:
        self._free.append(row)
        self.rows_released += 1
        self._released_ever.add(row)

    def _grow(self) -> None:
        self.grow_count += 1
        new_capacity = self.capacity * 2
        for arr in (
            self.solar_w,
            self.grid_w,
            self.prev_solar,
            self.tot_e,
            self.tot_c,
            self.tot_cost,
        ):
            # In-place growth keeps the ndarray's identity; snapshots
            # hold copies (never views), so refcheck can stay off.
            arr.resize(new_capacity, refcheck=False)
        self._free.extend(range(new_capacity - 1, self.capacity - 1, -1))
        self.capacity = new_capacity

    # ------------------------------------------------------------------
    # Dense cache refresh
    # ------------------------------------------------------------------
    def refresh(self, eco: "Ecovisor") -> None:
        """Re-derive the dense caches from the registered app table.

        Newly admitted apps are assigned rows seeded from their live
        virtual energy system and (flushed) ledger account; surviving
        rows keep their accumulated figures untouched.
        """
        # The ledger must be current before seeding cumulative columns.
        eco._flush_pending()
        apps = list(eco._apps.values())
        ledger = eco._ledger
        for app in apps:
            if app.row < 0:
                row = self.acquire_row()
                app.row = row
                ves = app.ves
                self.solar_w[row] = ves.solar_power_w
                self.grid_w[row] = ves.grid_power_w
                self.prev_solar[row] = app.previous_solar_w
                account = ledger.account(app.name)
                self.tot_e[row] = account.energy_wh
                self.tot_c[row] = account.carbon_g
                self.tot_cost[row] = account.cost_usd
        n = len(apps)
        self.apps = apps
        self.names = [app.name for app in apps]
        self.rows = np.fromiter((app.row for app in apps), dtype=np.intp, count=n)
        self.frac_solar = np.fromiter(
            (app.ves.share.solar_fraction for app in apps), dtype=float, count=n
        )
        self.thresh = np.fromiter(
            (app.solar_event_threshold_w for app in apps), dtype=float, count=n
        )
        self.has_solar = np.fromiter(
            (app.has_solar_share for app in apps), dtype=bool, count=n
        )
        self.grid_share_w = np.fromiter(
            (app.ves.share.grid_power_w for app in apps), dtype=float, count=n
        )
        self.batt_apps = [
            (i, app) for i, app in enumerate(apps) if app.ves.battery is not None
        ]
        self.batt_objs = [app for _, app in self.batt_apps]
        m = len(self.batt_apps)
        self.batt_idx = np.fromiter(
            (i for i, _ in self.batt_apps), dtype=np.intp, count=m
        )
        vbs = [app.ves.battery for _, app in self.batt_apps]
        self.batt_vbs = vbs
        self.batt_cap = np.fromiter(
            (vb.battery.capacity_wh for vb in vbs), dtype=float, count=m
        )
        self.batt_floor = np.fromiter(
            (vb.battery.floor_wh for vb in vbs), dtype=float, count=m
        )
        self.batt_ceff = np.fromiter(
            (vb.battery.config.charge_efficiency for vb in vbs), dtype=float, count=m
        )
        self.batt_deff = np.fromiter(
            (vb.battery.config.discharge_efficiency for vb in vbs),
            dtype=float,
            count=m,
        )
        self.batt_maxc = np.fromiter(
            (vb.battery.max_charge_power_w for vb in vbs), dtype=float, count=m
        )
        self.batt_maxd = np.fromiter(
            (vb.battery.max_discharge_power_w for vb in vbs), dtype=float, count=m
        )
        self.epoch += 1
        epoch = self.epoch
        for i, app in enumerate(apps):
            app.snap_index = i
            app.snap_epoch = epoch
        self.dirty = False

    def _knob_columns(self, n: int) -> Tuple[np.ndarray, np.ndarray]:
        """Fresh snapshot columns of the Table 1 battery knobs.

        Read from the objects at call time (not the settle gathers):
        an event subscriber can turn a knob mid-settle and the snapshot
        must see it, exactly like the object path's late read.
        """
        knob_target = np.zeros(n)
        knob_maxdis = np.zeros(n)
        vbs = self.batt_vbs
        m = len(vbs)
        if m:
            bidx = self.batt_idx
            knob_target[bidx] = np.fromiter(
                map(attrgetter("_charge_rate_w"), vbs), dtype=float, count=m
            )
            knob_maxdis[bidx] = np.fromiter(
                map(attrgetter("_max_discharge_w"), vbs), dtype=float, count=m
            )
        return knob_target, knob_maxdis

    def container_cache(
        self, platform: "ContainerOrchestrationPlatform"
    ) -> _ContainerCache:
        key = (platform.version, Container._mutation_epoch)
        cc = self._cc
        if cc is None or cc.key != key:
            if cc is not None and cc.key[1] == key[1] and key[0] > cc.key[0]:
                # Same mutation epoch, newer topology version: launches
                # only, so the cache extends instead of rebuilding.
                cc = _ContainerCache.extended(cc, platform, key)
            elif cc is not None and cc.key[0] == key[0]:
                # Same topology version, newer mutation epoch: the
                # population is unchanged (resize/start/stop in place),
                # so identity-derived columns carry over.
                cc = _ContainerCache.resized(cc, platform, key)
            else:
                cc = None
            if cc is None:
                cc = _ContainerCache(platform, key)
            self._cc = cc
        return cc

    def _gather_plan(self, cc: _ContainerCache) -> tuple:
        """Settle's per-topology gather plan over the container cache.

        Maps the dense app order onto the container cache's positions
        once per (topology, registration) generation:

        - ``empty_idx``: app indices with no running containers — their
          per-app demand stays the object path's int ``0`` (the parity
          digest distinguishes ``0`` from ``0.0`` through ``repr``).
        - ``counts``: per-app running-container counts (shared list —
          read-only for consumers).
        - ``flat_pos``/``flat_app``/``ids_flat``: the concatenated
          (app-major, launch-order) container walk the attribution loop
          follows, as index arrays for vectorized arithmetic.  The
          demand sum rides them too: ``np.bincount`` over ``flat_app``
          accumulates each app's container powers left-to-right from
          0.0, the exact IEEE sequence of the object path's per-app
          ``sum``.
        - ``cluster_get``: itemgetter over every running container for
          the cluster-power sum (None when the cluster is empty).
        """
        names = self.names
        positions = cc.positions
        if self._plan_positions is positions and self._plan_names is names:
            return self._plan
        cont_ids = cc.cont_ids
        empty_idx: List[int] = []
        counts: List[int] = []
        flat_pos: List[int] = []
        flat_app: List[int] = []
        ids_flat: List[str] = []
        for i, name in enumerate(names):
            pos = positions.get(name)
            if pos:
                counts.append(len(pos))
                flat_pos.extend(pos)
                flat_app.extend([i] * len(pos))
                ids_flat.extend(cont_ids[name])
            else:
                counts.append(0)
                empty_idx.append(i)
        run = cc.running_positions
        cluster_get = (
            (itemgetter(*run), len(run) == 1) if run else None
        )
        plan = (
            empty_idx,
            counts,
            np.asarray(flat_pos, dtype=np.intp),
            np.asarray(flat_app, dtype=np.intp),
            ids_flat,
            cluster_get,
        )
        self._plan_positions = positions
        self._plan_names = names
        self._plan = plan
        return plan

    # ------------------------------------------------------------------
    # Tick phases (called from Ecovisor.begin_tick / settle)
    # ------------------------------------------------------------------
    def begin(
        self, eco: "Ecovisor", time_s: float, visible_solar: float
    ) -> List[Event]:
        """Bulk solar refresh + begin-phase snapshot; returns solar events."""
        if self.dirty:
            self.refresh(eco)
        rows = self.rows
        names = self.names
        n = len(names)
        new = visible_solar * self.frac_solar
        prev = self.prev_solar[rows]
        events: List[Event] = []
        if n:
            flagged = np.flatnonzero(
                self.has_solar & (np.abs(new - prev) >= self.thresh)
            )
            for i in flagged.tolist():
                events.append(
                    SolarChangeEvent(
                        time_s=time_s,
                        app_name=names[i],
                        previous_w=float(prev[i]),
                        current_w=float(new[i]),
                    )
                )
        self.solar_w[rows] = new
        self.prev_solar[rows] = new
        # Only the snapshot's knob columns need the objects here: settle
        # reads solar from the arrays, so VES-held per-tick solar stays
        # stale in columnar mode (all apps alike) and is re-synced if
        # the mode turns off.
        knob_target, knob_maxdis = self._knob_columns(n)
        self.current_snap = FleetSnapshot(
            epoch=self.epoch,
            names=names,
            apps=self.apps,
            tick_index=eco._current_tick_index,
            time_s=time_s,
            duration_s=eco._current_tick_duration_s,
            carbon=eco._current_carbon,
            price=eco._current_price,
            has_market=eco._price_signal is not None,
            settled=False,
            solar=new,
            grid=self.grid_w[rows],
            tot_e=self.tot_e[rows],
            tot_c=self.tot_c[rows],
            tot_cost=self.tot_cost[rows],
            knob_target=knob_target,
            knob_maxdis=knob_maxdis,
            fleet=self,
            platform=eco._platform,
            cc=None,
            powers_list=None,
        )
        return events

    def settle(
        self, eco: "Ecovisor", time_s: float, duration_s: float
    ) -> Dict[str, float]:
        """Settle the whole fleet in bulk; returns served-energy fractions.

        One vectorized pass replays ``VirtualEnergySystem.settle``
        arithmetic for every app; rows with a virtual battery get a
        second vectorized pass replaying the charge/discharge model,
        with the resulting battery state scattered back into the
        ``VirtualBattery`` objects.
        """
        if self.dirty:
            self.refresh(eco)
        apps = self.apps
        names = self.names
        rows = self.rows
        n = len(apps)
        cc = self.container_cache(eco._platform)
        powers = cc.powers()
        powers_list = powers.tolist()
        empty_idx, counts, flat_pos, flat_app, ids_flat, cluster_get = (
            self._gather_plan(cc)
        )
        # bincount accumulates each app's container powers from 0.0 in
        # launch order — the exact IEEE sequence of the object path's
        # per-app demand sum.  Apps without containers keep the object
        # path's int 0 (repr-visible in telemetry, hence the fix-up).
        if len(flat_app):
            demand_arr = np.bincount(
                flat_app, weights=powers[flat_pos], minlength=n
            )
        else:
            demand_arr = np.zeros(n)
        demand_list: List[float] = demand_arr.tolist()
        for i in empty_idx:
            demand_list[i] = 0

        carbon = eco._current_carbon
        price = eco._current_price
        hrs = duration_s / 3600.0
        demand_wh = demand_arr * hrs
        solar_wh = self.solar_w[rows] * hrs
        solar_used = np.minimum(demand_wh, solar_wh)
        deficit = demand_wh - solar_used
        excess = solar_wh - solar_used
        grid_cap_wh = self.grid_share_w * hrs
        grid_load = np.minimum(deficit, grid_cap_wh)
        unmet = deficit - grid_load
        s2b = np.zeros(n)
        g2b = np.zeros(n)
        battery_wh = np.zeros(n)
        curtailed = excess.copy()
        served = solar_used + grid_load
        grid_total = grid_load.copy()
        carbon_g = grid_total / 1000.0 * carbon
        cost = grid_total / 1000.0 * price
        last_grid = grid_total / hrs if duration_s > 0 else np.zeros(n)

        settlements: List[Optional[TickSettlement]] = [None] * n
        batt_tel: List[Tuple[int, float, float, float]] = []
        batt_apps = self.batt_apps
        m = len(batt_apps)
        if m and duration_s > 0:
            # Vectorized replay of the VES battery settlement (steps 2
            # and 4 of `VirtualEnergySystem.settle`) over the battery
            # sub-fleet.  Every line mirrors one arithmetic step of
            # `Battery.charge`/`discharge` — same operand order, same
            # associativity — so the figures are bit-identical to the
            # object path; skipped branches contribute exact 0.0 terms,
            # which are additive/clamp identities on the state updates.
            vbs = self.batt_vbs
            bidx = self.batt_idx
            bcap = self.batt_cap
            bfloor = self.batt_floor
            ceff = self.batt_ceff
            deff = self.batt_deff
            maxc = self.batt_maxc
            maxd_phys = self.batt_maxd
            # Live state: the level moves every settle and the Table 1
            # knobs can change in any upcall, so gather them fresh.
            level = np.fromiter(
                map(attrgetter("_battery._level_wh"), vbs), dtype=float, count=m
            )
            target = np.fromiter(
                map(attrgetter("_charge_rate_w"), vbs), dtype=float, count=m
            )
            maxdis = np.fromiter(
                map(attrgetter("_max_discharge_w"), vbs), dtype=float, count=m
            )
            deficit_b = deficit[bidx]
            excess_b = excess[bidx]
            gcap_b = grid_cap_wh[bidx]

            # Step 2: discharge up to the app's cap (Battery.discharge).
            limited = np.minimum(deficit_b / hrs, maxdis)
            out_wh = np.minimum(
                np.minimum(limited, maxd_phys) * hrs,
                np.maximum(0.0, level - bfloor) * deff,
            )
            out_wh = np.where(limited > 0.0, out_wh, 0.0)
            level = np.maximum(0.0, np.minimum(bcap, level - out_wh / deff))
            delivered = out_wh / hrs
            batt_wh_b = delivered * hrs
            deficit_b = deficit_b - batt_wh_b

            # Step 3: grid covers the residual, up to the grid share.
            grid_load_b = np.minimum(np.maximum(0.0, deficit_b), gcap_b)
            unmet_b = np.maximum(0.0, deficit_b - grid_load_b)

            # Step 4a: excess solar charges the battery (Battery.charge).
            in1 = np.minimum(
                np.minimum(excess_b / hrs, maxc) * hrs,
                np.maximum(0.0, bcap - level) / ceff,
            )
            in1 = np.where(excess_b > 0.0, in1, 0.0)
            level = np.maximum(0.0, np.minimum(bcap, level + in1 * ceff))
            s2b_b = (in1 / hrs) * hrs

            # Step 4b: the charge-rate knob tops up from the grid.
            solar_charge_w = s2b_b / hrs
            grid_headroom = np.maximum(0.0, gcap_b - grid_load_b)
            top_up = np.minimum(target - solar_charge_w, grid_headroom / hrs)
            in2 = np.minimum(
                np.minimum(top_up, maxc) * hrs,
                np.maximum(0.0, bcap - level) / ceff,
            )
            in2 = np.where((target > solar_charge_w) & (top_up > 0.0), in2, 0.0)
            level = np.maximum(0.0, np.minimum(bcap, level + in2 * ceff))
            g2b_b = (in2 / hrs) * hrs
            last_charge_b = (s2b_b + g2b_b) / hrs

            # Step 5 and attribution.
            curtailed_b = excess_b - s2b_b
            served_b = solar_used[bidx] + batt_wh_b + grid_load_b
            grid_total_b = grid_load_b + g2b_b
            carbon_b = grid_total_b / 1000.0 * carbon
            cost_b = grid_total_b / 1000.0 * price
            last_grid_b = grid_total_b / hrs

            served[bidx] = served_b
            unmet[bidx] = unmet_b
            s2b[bidx] = s2b_b
            curtailed[bidx] = curtailed_b
            battery_wh[bidx] = batt_wh_b
            grid_load[bidx] = grid_load_b
            g2b[bidx] = g2b_b
            grid_total[bidx] = grid_total_b
            carbon_g[bidx] = carbon_b
            cost[bidx] = cost_b
            last_grid[bidx] = last_grid_b

            # Write the settled battery state back into the objects —
            # they remain the source of truth between ticks (lazy views,
            # share rebalances, mode-off restore all read them).  The
            # accumulator order (discharge, solar charge, grid top-up)
            # matches the object path's call order.
            # Only rows whose battery state actually moved need the
            # object write-back: for an idle battery every write below
            # is value-identical (level round-trips through identity
            # clamps, the accumulators gain exact 0.0, the last-power
            # figures already equal their targets), so skipping them is
            # unobservable — and most of a large fleet's batteries are
            # idle on most ticks.
            prev_dis = np.fromiter(
                map(attrgetter("_last_discharge_w"), vbs), dtype=float, count=m
            )
            prev_chg = np.fromiter(
                map(attrgetter("_last_charge_w"), vbs), dtype=float, count=m
            )
            touched = (
                (out_wh != 0.0)
                | (in1 != 0.0)
                | (in2 != 0.0)
                | (delivered != prev_dis)
                | (last_charge_b != prev_chg)
            )
            lvl_l = level.tolist()
            out_l = out_wh.tolist()
            in1_l = in1.tolist()
            in2_l = in2.tolist()
            ldis_l = delivered.tolist()
            lchg_l = last_charge_b.tolist()
            for k in np.flatnonzero(touched).tolist():
                vb = vbs[k]
                b = vb._battery
                b._level_wh = lvl_l[k]
                e = out_l[k]
                b._total_discharged_wh += e
                b._cycle_throughput_wh += e
                e = in1_l[k]
                b._total_charged_wh += e
                b._cycle_throughput_wh += e
                e = in2_l[k]
                b._total_charged_wh += e
                b._cycle_throughput_wh += e
                vb._last_discharge_w = ldis_l[k]
                vb._last_charge_w = lchg_l[k]

            # Battery full/empty edges, published after the bulk compute
            # but in the same per-app order as the object loop (a
            # subscriber that mutates tenancy mid-settlement sees a
            # later phase of the tick than on the object path — a
            # documented edge).
            usable_arr = np.maximum(0.0, level - bfloor)
            full_arr = np.maximum(0.0, bcap - level) <= 1e-9
            empty_arr = usable_arr <= 1e-9
            usable_l = usable_arr.tolist()
            soc_l = (level / bcap).tolist()
            # Signed battery power (charging positive).
            bpow_l = (last_charge_b - delivered).tolist()
            # The per-app edge loop only needs apps whose full/empty
            # state changed; for the (overwhelmingly common) steady
            # rows the flag write is value-identical and no event
            # fires.  The masked walk stays in ascending app order, so
            # event interleaving matches the full loop.
            was_full = np.fromiter(
                map(attrgetter("battery_was_full"), self.batt_objs),
                dtype=bool,
                count=m,
            )
            was_empty = np.fromiter(
                map(attrgetter("battery_was_empty"), self.batt_objs),
                dtype=bool,
                count=m,
            )
            edges = (full_arr != was_full) | (empty_arr != was_empty)
            if edges.any():
                full_l = full_arr.tolist()
                empty_l = empty_arr.tolist()
                for k in np.flatnonzero(edges).tolist():
                    i, app = batt_apps[k]
                    if full_l[k] and not app.battery_was_full:
                        eco._publish(
                            BatteryFullEvent(
                                time_s=time_s,
                                app_name=app.name,
                                charge_level_wh=usable_l[k],
                            )
                        )
                    app.battery_was_full = full_l[k]
                    if empty_l[k] and not app.battery_was_empty:
                        eco._publish(
                            BatteryEmptyEvent(time_s=time_s, app_name=app.name)
                        )
                    app.battery_was_empty = empty_l[k]
            batt_tel.extend(
                zip(self.batt_idx.tolist(), soc_l, usable_l, bpow_l)
            )
        elif m:
            # Degenerate duration: defer to the real VES so its input
            # validation raises exactly as the object path would.  The
            # VES per-tick solar is stale in columnar mode; restore it
            # from the arrays first.
            for i, app in batt_apps:
                app.ves.restore_tick_state(
                    float(self.solar_w[app.row]), float(self.grid_w[app.row])
                )
                s = app.ves.settle(
                    demand_list[i],
                    carbon,
                    time_s,
                    duration_s,
                    price_usd_per_kwh=price,
                )
                settlements[i] = s
                served[i] = s.served_wh
                unmet[i] = s.unmet_wh
                s2b[i] = s.solar_to_battery_wh
                curtailed[i] = s.curtailed_wh
                battery_wh[i] = s.battery_discharge_wh
                grid_load[i] = s.grid_load_wh
                g2b[i] = s.grid_to_battery_wh
                grid_total[i] = s.grid_load_wh + s.grid_to_battery_wh
                carbon_g[i] = s.carbon_g
                cost[i] = s.cost_usd
                last_grid[i] = app.ves.grid_power_w
            for i, app in batt_apps:
                vb = app.ves.battery
                if vb is None:
                    continue
                if vb.is_full and not app.battery_was_full:
                    eco._publish(
                        BatteryFullEvent(
                            time_s=time_s,
                            app_name=app.name,
                            charge_level_wh=vb.usable_wh,
                        )
                    )
                app.battery_was_full = vb.is_full
                if vb.is_empty and not app.battery_was_empty:
                    eco._publish(
                        BatteryEmptyEvent(time_s=time_s, app_name=app.name)
                    )
                app.battery_was_empty = vb.is_empty
                batt_tel.append(
                    (
                        i,
                        vb.soc_fraction,
                        vb.usable_wh,
                        vb.last_charge_w - vb.last_discharge_w,
                    )
                )

        # Scatter the settled figures back into the persistent rows.
        # Rows are unique, so fancy += accumulates exactly like the
        # per-app sequential `account.add` the flush will replay.
        self.grid_w[rows] = last_grid
        self.tot_e[rows] += served
        self.tot_c[rows] += carbon_g
        self.tot_cost[rows] += cost

        # Eager container attribution: container objects are live state
        # (policies read cumulative energy/carbon), only the series
        # writes are buffered.  The per-container shares are elementwise
        # (no reductions), so the vectorized arithmetic is bit-identical
        # to the object path's `power / total`, `served * fraction`.
        cont_carbon: List[Tuple[str, float]] = []
        if flat_pos.size:
            powers_flat = powers[flat_pos]
            tot_rep = demand_arr[flat_app]
            frac = np.divide(
                powers_flat,
                tot_rep,
                out=np.zeros(len(powers_flat)),
                where=tot_rep > 1e-12,
            )
            pw_l = powers_flat.tolist()
            energy_l = (served[flat_app] * frac).tolist()
            carbon_l = (carbon_g[flat_app] * frac).tolist()
            clist = cc.clist
            pos_l = flat_pos.tolist()
            # Inlined Container.record_tick: three attribute writes per
            # container, hot enough at fleet scale to skip the call.
            for j in range(len(pos_l)):
                c = clist[pos_l[j]]
                c._last_power_w = pw_l[j]
                c._energy_wh += energy_l[j]
                c._carbon_g += carbon_l[j]
            cont_carbon = list(zip(ids_flat, carbon_l))

        if n:
            fractions_arr = np.divide(
                served, demand_wh, out=np.ones(n), where=demand_wh > 1e-12
            )
            fractions = dict(zip(names, fractions_arr.tolist()))
        else:
            fractions = {}

        total_grid_w = 0.0
        total_solar_used_w = 0.0
        if duration_s > 0:
            # Elementwise terms vectorize bit-identically; the running
            # sums stay sequential in app order (their IEEE sequence is
            # the parity contract, so no np.sum/fsum here).
            gt = (grid_total * 3600.0 / duration_s).tolist()
            ss = ((solar_used + s2b) * 3600.0 / duration_s).tolist()
            for v in gt:
                total_grid_w += v
            for v in ss:
                total_solar_used_w += v

        plant = eco._plant
        if plant.has_grid and total_grid_w > 0:
            plant.grid.draw(total_grid_w, duration_s)
        if plant.has_renewable and total_solar_used_w > 0:
            plant.deliver_renewable(total_solar_used_w, duration_s, time_s)

        # Same accumulation (order, operand values) as the genexpr
        # sum over app.ves.battery.battery.level_wh, reading the slots
        # the property chain forwards to — ~1.5k property hops per tick
        # on a battery-heavy fleet otherwise.
        aggregate_battery_wh = 0.0
        for vb in self.batt_vbs:
            aggregate_battery_wh += vb._battery._level_wh
        # Plant and app-count telemetry stay eager: their series never
        # receive buffered writes, so eager/buffered order per series is
        # preserved.
        eco._monitor.record_plant(
            time_s,
            solar_w=eco._physical_solar_now_w,
            battery_level_wh=aggregate_battery_wh,
            grid_power_w=total_grid_w,
        )
        eco._monitor.record_app_count(time_s, len(eco._apps))

        record = _TickRecord()
        record.time_s = time_s
        record.duration_s = duration_s
        record.carbon = carbon
        record.price = price
        record.has_market = eco._price_signal is not None
        record.names = names
        record.demand_w = demand_list
        record.counts = counts
        record.demand_wh = demand_wh
        record.served = served
        record.unmet = unmet
        record.solar_avail = solar_wh
        record.solar_used = solar_used
        record.s2b = s2b
        record.curtailed = curtailed
        record.battery_wh = battery_wh
        record.grid_load = grid_load
        record.g2b = g2b
        record.carbon_g = carbon_g
        record.cost = cost
        record.last_grid = last_grid
        record.settlements = settlements
        record.batt_tel = batt_tel
        record.cont_ids = cc.ids
        record.cont_powers = powers_list
        record.cont_carbon = cont_carbon
        if cluster_get is None:
            attributed = 0
        else:
            v = cluster_get[0](powers_list)
            attributed = v if cluster_get[1] else sum(v)
        record.cluster_power = attributed + cc.baseline_w
        self.pending.append(record)

        knob_target, knob_maxdis = self._knob_columns(n)
        self.current_snap = FleetSnapshot(
            epoch=self.epoch,
            names=names,
            apps=apps,
            tick_index=eco._current_tick_index,
            time_s=time_s,
            duration_s=duration_s,
            carbon=carbon,
            price=price,
            has_market=eco._price_signal is not None,
            settled=True,
            solar=self.solar_w[rows],
            grid=last_grid,
            tot_e=self.tot_e[rows],
            tot_c=self.tot_c[rows],
            tot_cost=self.tot_cost[rows],
            knob_target=knob_target,
            knob_maxdis=knob_maxdis,
            fleet=self,
            platform=eco._platform,
            cc=cc,
            powers_list=powers_list,
        )
        return fractions
