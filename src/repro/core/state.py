"""Immutable per-tick energy state snapshots (API v1).

The paper's Table 1 exposes the virtual energy system through a dozen
independent getters.  Re-polling them is redundant work on the hottest
path in every sweep: each tick, every policy, library query, REST
handler, and telemetry sampler traverses the same live ecovisor state.
API v1 instead materializes **one consistent, immutable observation per
application per tick** — the :class:`EnergyState` snapshot — computed
once by the ecovisor and shared by reference with every consumer
(policies, the Table 2 library, the REST surface, telemetry).  Vessim
and the "Enabling Sustainable Clouds" vision paper converge on the same
shape: a single frozen view of the energy system per step, with change
notifications (:mod:`repro.core.signals`) layered on top.

Snapshot lifecycle (one snapshot per app per tick):

1. ``Ecovisor.begin_tick`` *builds* the snapshot right after sampling
   the environment.  At that point it holds exactly what the legacy
   getters would return during the tick upcall window: this tick's
   solar/carbon/price, and battery/grid/ledger figures from the
   previous settlement.
2. ``Ecovisor.settle`` *finalizes* the same snapshot
   (``dataclasses.replace``, not a recompute) with the tick's settled
   battery state, grid power, measured container power, and cumulative
   ledger totals, flipping ``settled`` to True.

Both phases hand out the same logical tick snapshot; the build counter
(`Ecovisor.state_builds`) therefore increments exactly once per app per
tick.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Callable, Dict, Mapping, Optional


@dataclass(frozen=True, slots=True)
class BatteryState:
    """Immutable view of one application's virtual battery at a tick.

    ``None`` in :attr:`EnergyState.battery` means the application has no
    virtual battery share — the explicit spelling of what the legacy
    getters flatten into 0.0 returns (see the zero-default properties on
    :class:`EnergyState` for that access style).
    """

    charge_level_wh: float
    capacity_wh: float
    soc_fraction: float
    discharge_rate_w: float
    charge_rate_w: float
    max_discharge_w: float
    charge_target_w: float
    is_full: bool
    is_empty: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "charge_level_wh": self.charge_level_wh,
            "capacity_wh": self.capacity_wh,
            "soc_fraction": self.soc_fraction,
            "discharge_rate_w": self.discharge_rate_w,
            "charge_rate_w": self.charge_rate_w,
            "max_discharge_w": self.max_discharge_w,
            "charge_target_w": self.charge_target_w,
            "is_full": self.is_full,
            "is_empty": self.is_empty,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BatteryState":
        """Inverse of :meth:`to_dict` (client SDK reconstruction)."""
        return cls(**{key: payload[key] for key in cls.__slots__})


def _freeze_mapping(mapping: Mapping[str, float]) -> Mapping[str, float]:
    if isinstance(mapping, MappingProxyType):
        return mapping
    return MappingProxyType(dict(mapping))


@dataclass(frozen=True, slots=True)
class EnergyState:
    """One application's frozen per-tick view of its virtual energy system.

    Obtained via ``api.state()`` (in-process) or ``GET
    /v1/apps/{app}/state`` (REST).  All consumers of a tick share the
    same instance by reference; fields never mutate.

    ``settled`` is False during the tick upcall window (environment
    sampled, previous tick settled) and True once the ecovisor has
    settled this tick's energy flows.
    """

    app_name: str
    tick_index: int
    time_s: float
    duration_s: float
    # Environment signals, sampled once at tick start.
    solar_power_w: float
    grid_carbon_g_per_kwh: float
    grid_price_usd_per_kwh: float
    has_market: bool
    # Virtual energy system readings (last settled values until this
    # tick is itself settled).
    grid_power_w: float
    battery: Optional[BatteryState]
    container_power_w: Mapping[str, float] = field(default_factory=dict)
    # Cumulative ledger figures for this application.
    total_energy_wh: float = 0.0
    total_carbon_g: float = 0.0
    total_cost_usd: float = 0.0
    settled: bool = False

    def __post_init__(self):
        object.__setattr__(
            self, "container_power_w", _freeze_mapping(self.container_power_w)
        )

    # ------------------------------------------------------------------
    # Battery zero-default access style (legacy getter semantics)
    # ------------------------------------------------------------------
    @property
    def has_battery(self) -> bool:
        return self.battery is not None

    @property
    def battery_charge_level_wh(self) -> float:
        """Usable stored energy; 0.0 when the app has no battery share."""
        return self.battery.charge_level_wh if self.battery is not None else 0.0

    @property
    def battery_capacity_wh(self) -> float:
        """Usable battery capacity; 0.0 when the app has no battery share."""
        return self.battery.capacity_wh if self.battery is not None else 0.0

    @property
    def battery_discharge_rate_w(self) -> float:
        """Last tick's discharge power; 0.0 when no battery share."""
        return self.battery.discharge_rate_w if self.battery is not None else 0.0

    @property
    def battery_soc_fraction(self) -> float:
        """State of charge in [0, 1]; 0.0 when no battery share."""
        return self.battery.soc_fraction if self.battery is not None else 0.0

    # ------------------------------------------------------------------
    # Derived figures
    # ------------------------------------------------------------------
    @property
    def app_power_w(self) -> float:
        """Total measured container power of the application (W)."""
        return sum(self.container_power_w.values())

    def finalized(
        self,
        *,
        grid_power_w: float,
        battery: Optional[BatteryState],
        container_power_w: Mapping[str, float],
        total_energy_wh: float,
        total_carbon_g: float,
        total_cost_usd: float,
    ) -> "EnergyState":
        """The settled version of this tick's snapshot.

        Semantically ``dataclasses.replace``; spelled as a direct
        construction because it runs once per app per tick and
        ``replace`` pays field introspection every call.
        """
        return EnergyState(
            app_name=self.app_name,
            tick_index=self.tick_index,
            time_s=self.time_s,
            duration_s=self.duration_s,
            solar_power_w=self.solar_power_w,
            grid_carbon_g_per_kwh=self.grid_carbon_g_per_kwh,
            grid_price_usd_per_kwh=self.grid_price_usd_per_kwh,
            has_market=self.has_market,
            grid_power_w=grid_power_w,
            battery=battery,
            container_power_w=_freeze_mapping(container_power_w),
            total_energy_wh=total_energy_wh,
            total_carbon_g=total_carbon_g,
            total_cost_usd=total_cost_usd,
            settled=True,
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "EnergyState":
        """Inverse of :meth:`to_dict`.

        The client SDK uses this to hand callers the same frozen
        ``EnergyState`` type an in-process ``api.state()`` returns; the
        round-trip is lossless, which is what the SDK parity test pins.
        """
        battery = payload.get("battery")
        return cls(
            app_name=payload["app_name"],
            tick_index=payload["tick_index"],
            time_s=payload["time_s"],
            duration_s=payload["duration_s"],
            solar_power_w=payload["solar_power_w"],
            grid_carbon_g_per_kwh=payload["grid_carbon_g_per_kwh"],
            grid_price_usd_per_kwh=payload["grid_price_usd_per_kwh"],
            has_market=payload["has_market"],
            grid_power_w=payload["grid_power_w"],
            battery=BatteryState.from_dict(battery) if battery else None,
            container_power_w=dict(payload["container_power_w"]),
            total_energy_wh=payload["total_energy_wh"],
            total_carbon_g=payload["total_carbon_g"],
            total_cost_usd=payload["total_cost_usd"],
            settled=payload["settled"],
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (the ``GET /v1/apps/{app}/state`` body)."""
        return {
            "app_name": self.app_name,
            "tick_index": self.tick_index,
            "time_s": self.time_s,
            "duration_s": self.duration_s,
            "solar_power_w": self.solar_power_w,
            "grid_power_w": self.grid_power_w,
            "grid_carbon_g_per_kwh": self.grid_carbon_g_per_kwh,
            "grid_price_usd_per_kwh": self.grid_price_usd_per_kwh,
            "has_market": self.has_market,
            "battery": self.battery.to_dict() if self.battery else None,
            "container_power_w": dict(self.container_power_w),
            "total_energy_wh": self.total_energy_wh,
            "total_carbon_g": self.total_carbon_g,
            "total_cost_usd": self.total_cost_usd,
            "settled": self.settled,
        }


# ----------------------------------------------------------------------
# Columnar lazy views (core/fleetarrays.py)
# ----------------------------------------------------------------------
def _build_battery_view(snap: Any, index: int) -> Optional[BatteryState]:
    """BatteryState for a row view, mirroring ``Ecovisor._battery_state``.

    The charge-target / max-discharge knobs come from the snapshot's
    phase-captured arrays; level, state of charge, and last charge /
    discharge rates read the live virtual battery — which the ecovisor
    only mutates at settlement, so within a phase the values equal what
    an eager build at phase start would have captured.  (A consumer
    that retains the view across ticks reads later battery state — the
    documented staleness edge of lazy materialization.)
    """
    battery = snap.apps[index].ves.battery
    if battery is None:
        return None
    return BatteryState(
        charge_level_wh=battery.usable_wh,
        capacity_wh=battery.usable_capacity_wh,
        soc_fraction=battery.soc_fraction,
        discharge_rate_w=battery.last_discharge_w,
        charge_rate_w=battery.last_charge_w,
        max_discharge_w=float(snap.knob_maxdis[index]),
        charge_target_w=float(snap.knob_target[index]),
        is_full=battery.is_full,
        is_empty=battery.is_empty,
    )


def _build_container_map(snap: Any, index: int) -> Mapping[str, float]:
    ids, powers = snap.container_readings_for(index)
    return MappingProxyType(dict(zip(ids, powers)))


#: How each EnergyState field materializes from a (FleetSnapshot, row
#: index) pair.  Array reads are wrapped in float() so no numpy scalar
#: ever escapes into snapshots, JSON payloads, or equality checks.
_FIELD_BUILDERS: Dict[str, Callable[[Any, int], Any]] = {
    "app_name": lambda s, i: s.names[i],
    "tick_index": lambda s, i: s.tick_index,
    "time_s": lambda s, i: s.time_s,
    "duration_s": lambda s, i: s.duration_s,
    "solar_power_w": lambda s, i: float(s.solar[i]),
    "grid_carbon_g_per_kwh": lambda s, i: s.carbon,
    "grid_price_usd_per_kwh": lambda s, i: s.price,
    "has_market": lambda s, i: s.has_market,
    "grid_power_w": lambda s, i: float(s.grid[i]),
    "battery": _build_battery_view,
    "container_power_w": _build_container_map,
    "total_energy_wh": lambda s, i: float(s.tot_e[i]),
    "total_carbon_g": lambda s, i: float(s.tot_c[i]),
    "total_cost_usd": lambda s, i: float(s.tot_cost[i]),
    "settled": lambda s, i: s.settled,
}


class RowEnergyState(EnergyState):
    """An :class:`EnergyState` materialized lazily from one fleet row.

    The columnar hot path stores fleet state in dense arrays
    (:class:`repro.core.fleetarrays.FleetSnapshot`); this subclass *is*
    the ``EnergyState`` consumers receive, but each field is computed
    from ``(snapshot, row index)`` on first attribute access and then
    cached in the instance's slot.  Because the parent is a frozen
    slots dataclass, unset slots fall through to ``__getattr__`` and
    the cache write uses ``object.__setattr__`` — consumers still get
    frozen semantics (plain assignment raises), dataclass ``repr``/
    ``eq``/``to_dict`` all work, and a fully accessed view is
    indistinguishable from an eagerly built snapshot.
    """

    __slots__ = ("_snap", "_index")

    def __init__(self, snap: Any, index: int):
        object.__setattr__(self, "_snap", snap)
        object.__setattr__(self, "_index", index)

    def __getattr__(self, name: str) -> Any:
        builder = _FIELD_BUILDERS.get(name)
        if builder is None:
            raise AttributeError(name)
        value = builder(self._snap, self._index)
        object.__setattr__(self, name, value)
        return value

    def __eq__(self, other: Any) -> bool:
        # The dataclass-generated __eq__ requires an exact class match;
        # a lazy view must instead compare equal to the eagerly built
        # snapshot holding the same values (the parity contract), so
        # equality is by field value across the EnergyState hierarchy.
        if not isinstance(other, EnergyState):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name)
            for name in _FIELD_BUILDERS
        )

    __hash__ = EnergyState.__hash__
