"""Event bus for asynchronous upcall notifications.

The paper's ecovisor exposes one periodic upcall, ``tick()``, plus a set of
library-level notifications layered on top of it (Table 2):
``notify_solar_change``, ``notify_carbon_change``, ``notify_battery_full``
and ``notify_battery_empty``.  This module provides the dispatch substrate:
typed events and a small synchronous publish/subscribe bus.

Events are delivered synchronously within the tick in which they occur,
matching the paper's observation that minute-scale ticks are fine-grained
enough for applications to react to external changes (Section 3.1).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, DefaultDict, Dict, List, Type


@dataclass(frozen=True)
class Event:
    """Base class for all events. ``time_s`` is the simulation timestamp."""

    time_s: float


@dataclass(frozen=True)
class TickEvent(Event):
    """Published once per tick interval, before application upcalls run."""

    tick_index: int = 0


@dataclass(frozen=True)
class SolarChangeEvent(Event):
    """Virtual solar output changed significantly since the previous tick."""

    app_name: str = ""
    previous_w: float = 0.0
    current_w: float = 0.0

    @property
    def delta_w(self) -> float:
        return self.current_w - self.previous_w


@dataclass(frozen=True)
class CarbonChangeEvent(Event):
    """Grid carbon-intensity changed significantly since the previous tick."""

    previous_g_per_kwh: float = 0.0
    current_g_per_kwh: float = 0.0

    @property
    def delta_g_per_kwh(self) -> float:
        return self.current_g_per_kwh - self.previous_g_per_kwh


@dataclass(frozen=True)
class PriceChangeEvent(Event):
    """Grid electricity price changed significantly since the previous tick.

    Published only when a price signal is attached to the ecovisor (the
    market layer); the change threshold is
    ``EcovisorConfig.price_change_threshold_usd_per_kwh``.
    """

    previous_usd_per_kwh: float = 0.0
    current_usd_per_kwh: float = 0.0

    @property
    def delta_usd_per_kwh(self) -> float:
        return self.current_usd_per_kwh - self.previous_usd_per_kwh


@dataclass(frozen=True)
class BatteryFullEvent(Event):
    """An application's virtual battery reached full charge."""

    app_name: str = ""
    charge_level_wh: float = 0.0


@dataclass(frozen=True)
class BatteryEmptyEvent(Event):
    """An application's virtual battery reached its empty floor.

    "Empty" follows the paper's convention: the physical battery treats a
    30% state-of-charge as empty to protect cycle life, so a virtual
    battery is empty when its *usable* energy reaches zero.
    """

    app_name: str = ""


@dataclass(frozen=True)
class ResourceRevocationEvent(Event):
    """The platform revoked containers from an application.

    Distributed applications on container orchestration platforms are
    already designed to tolerate revocations (paper Section 3); power
    shortages under clean-energy volatility manifest the same way.
    """

    app_name: str = ""
    container_ids: tuple = ()


EventCallback = Callable[[Event], None]


class EventBus:
    """Synchronous publish/subscribe dispatcher keyed by event type.

    Subscribers for a type receive every published event of exactly that
    type.  Dispatch order is subscription order.  Exceptions raised by a
    subscriber propagate to the publisher: during simulation this converts
    a buggy policy callback into a visible test failure rather than a
    silently swallowed error.
    """

    def __init__(self):
        self._subscribers: DefaultDict[Type[Event], List[EventCallback]] = (
            defaultdict(list)
        )
        self._published_counts: Dict[Type[Event], int] = {}

    def subscribe(self, event_type: Type[Event], callback: EventCallback) -> None:
        """Register ``callback`` for events of exactly ``event_type``."""
        self._subscribers[event_type].append(callback)

    def unsubscribe(self, event_type: Type[Event], callback: EventCallback) -> None:
        """Remove a previously registered callback; no-op if absent."""
        callbacks = self._subscribers.get(event_type, [])
        if callback in callbacks:
            callbacks.remove(callback)

    def publish(self, event: Event) -> int:
        """Deliver ``event`` to its subscribers; returns delivery count."""
        event_type = type(event)
        self._published_counts[event_type] = (
            self._published_counts.get(event_type, 0) + 1
        )
        callbacks = list(self._subscribers.get(event_type, []))
        for callback in callbacks:
            callback(event)
        return len(callbacks)

    def published_count(self, event_type: Type[Event]) -> int:
        """How many events of ``event_type`` have been published."""
        return self._published_counts.get(event_type, 0)

    def subscriber_count(self, event_type: Type[Event]) -> int:
        """How many callbacks are currently registered for a type."""
        return len(self._subscribers.get(event_type, []))
