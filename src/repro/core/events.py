"""Event bus for asynchronous upcall notifications.

The paper's ecovisor exposes one periodic upcall, ``tick()``, plus a set of
library-level notifications layered on top of it (Table 2):
``notify_solar_change``, ``notify_carbon_change``, ``notify_battery_full``
and ``notify_battery_empty``.  This module provides the dispatch substrate:
typed events and a small synchronous publish/subscribe bus.

Events are delivered synchronously within the tick in which they occur,
matching the paper's observation that minute-scale ticks are fine-grained
enough for applications to react to external changes (Section 3.1).
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Callable, DefaultDict, Dict, List, Type


@dataclass(frozen=True)
class Event:
    """Base class for all events. ``time_s`` is the simulation timestamp."""

    time_s: float


@dataclass(frozen=True)
class TickEvent(Event):
    """Published once per tick interval, before application upcalls run."""

    tick_index: int = 0


@dataclass(frozen=True)
class SolarChangeEvent(Event):
    """Virtual solar output changed significantly since the previous tick."""

    app_name: str = ""
    previous_w: float = 0.0
    current_w: float = 0.0

    @property
    def delta_w(self) -> float:
        return self.current_w - self.previous_w


@dataclass(frozen=True)
class CarbonChangeEvent(Event):
    """Grid carbon-intensity changed significantly since the previous tick."""

    previous_g_per_kwh: float = 0.0
    current_g_per_kwh: float = 0.0

    @property
    def delta_g_per_kwh(self) -> float:
        return self.current_g_per_kwh - self.previous_g_per_kwh


@dataclass(frozen=True)
class PriceChangeEvent(Event):
    """Grid electricity price changed significantly since the previous tick.

    Published only when a price signal is attached to the ecovisor (the
    market layer); the change threshold is
    ``EcovisorConfig.price_change_threshold_usd_per_kwh``.
    """

    previous_usd_per_kwh: float = 0.0
    current_usd_per_kwh: float = 0.0

    @property
    def delta_usd_per_kwh(self) -> float:
        return self.current_usd_per_kwh - self.previous_usd_per_kwh


@dataclass(frozen=True)
class BatteryFullEvent(Event):
    """An application's virtual battery reached full charge."""

    app_name: str = ""
    charge_level_wh: float = 0.0


@dataclass(frozen=True)
class BatteryEmptyEvent(Event):
    """An application's virtual battery reached its empty floor.

    "Empty" follows the paper's convention: the physical battery treats a
    30% state-of-charge as empty to protect cycle life, so a virtual
    battery is empty when its *usable* energy reaches zero.
    """

    app_name: str = ""


@dataclass(frozen=True)
class AppAdmittedEvent(Event):
    """An application was admitted (its virtual energy system created).

    Published both for pre-run registrations and for mid-run admissions
    through the control plane (:meth:`Ecovisor.admit_app`); the share
    fields record the allocation granted at admission.
    """

    app_name: str = ""
    solar_fraction: float = 0.0
    battery_fraction: float = 0.0
    grid_power_w: float = 0.0


@dataclass(frozen=True)
class AppEvictedEvent(Event):
    """An application was evicted and its account finalized.

    Carries the finalized cumulative ledger figures so an external
    controller tailing the event feed can settle up without a second
    round-trip; the app's containers are already stopped and its
    solar/battery share released when this event is published.
    """

    app_name: str = ""
    energy_wh: float = 0.0
    carbon_g: float = 0.0
    cost_usd: float = 0.0
    containers_stopped: int = 0


@dataclass(frozen=True)
class ShareChangedEvent(Event):
    """An application's energy share was rebalanced at a tick boundary.

    Published from ``begin_tick`` when a pending :meth:`Ecovisor.set_share`
    takes effect, after the tick's snapshots are built — a subscriber
    reading ``state()`` inside its callback observes the rebalanced view.
    """

    app_name: str = ""
    solar_fraction: float = 0.0
    battery_fraction: float = 0.0
    grid_power_w: float = 0.0
    previous_solar_fraction: float = 0.0
    previous_battery_fraction: float = 0.0
    previous_grid_power_w: float = 0.0


@dataclass(frozen=True)
class ResourceRevocationEvent(Event):
    """The platform revoked containers from an application.

    Distributed applications on container orchestration platforms are
    already designed to tolerate revocations (paper Section 3); power
    shortages under clean-energy volatility manifest the same way.
    """

    app_name: str = ""
    container_ids: tuple = ()


EventCallback = Callable[[Event], None]

#: Registry of concrete event types by class name — the wire format's
#: ``type`` discriminator (used by the REST event feed and the client
#: SDK to round-trip events losslessly).
EVENT_TYPES: Dict[str, Type[Event]] = {
    cls.__name__: cls
    for cls in (
        TickEvent,
        SolarChangeEvent,
        CarbonChangeEvent,
        PriceChangeEvent,
        BatteryFullEvent,
        BatteryEmptyEvent,
        AppAdmittedEvent,
        AppEvictedEvent,
        ShareChangedEvent,
        ResourceRevocationEvent,
    )
}


def event_to_dict(event: Event) -> Dict[str, Any]:
    """JSON-serializable form of an event: its fields plus ``type``."""
    payload = dataclasses.asdict(event)
    payload["type"] = type(event).__name__
    return payload


def event_from_dict(payload: Dict[str, Any]) -> Event:
    """Reconstruct the event a :func:`event_to_dict` payload describes.

    Round-trips exactly: the rebuilt dataclass compares equal to the
    original, which is what pins the client SDK's event feed to the
    in-process signal deliveries byte-for-byte.
    """
    data = dict(payload)
    type_name = data.pop("type", None)
    cls = EVENT_TYPES.get(type_name)
    if cls is None:
        raise ValueError(f"unknown event type: {type_name!r}")
    kwargs = {
        f.name: tuple(data[f.name])
        if isinstance(data.get(f.name), list)
        else data[f.name]
        for f in dataclasses.fields(cls)
        if f.name in data
    }
    return cls(**kwargs)


class EventBus:
    """Synchronous publish/subscribe dispatcher keyed by event type.

    Subscribers for a type receive every published event of exactly that
    type.  Dispatch order is subscription order.  Exceptions raised by a
    subscriber propagate to the publisher: during simulation this converts
    a buggy policy callback into a visible test failure rather than a
    silently swallowed error.
    """

    def __init__(self):
        self._subscribers: DefaultDict[Type[Event], List[EventCallback]] = (
            defaultdict(list)
        )
        self._published_counts: Dict[Type[Event], int] = {}

    def subscribe(self, event_type: Type[Event], callback: EventCallback) -> None:
        """Register ``callback`` for events of exactly ``event_type``."""
        self._subscribers[event_type].append(callback)

    def unsubscribe(self, event_type: Type[Event], callback: EventCallback) -> None:
        """Remove a previously registered callback; no-op if absent."""
        callbacks = self._subscribers.get(event_type, [])
        if callback in callbacks:
            callbacks.remove(callback)

    def publish(self, event: Event) -> int:
        """Deliver ``event`` to its subscribers; returns delivery count."""
        event_type = type(event)
        self._published_counts[event_type] = (
            self._published_counts.get(event_type, 0) + 1
        )
        callbacks = list(self._subscribers.get(event_type, []))
        for callback in callbacks:
            callback(event)
        return len(callbacks)

    def published_count(self, event_type: Type[Event]) -> int:
        """How many events of ``event_type`` have been published."""
        return self._published_counts.get(event_type, 0)

    def subscriber_count(self, event_type: Type[Event]) -> int:
        """How many callbacks are currently registered for a type."""
        return len(self._subscribers.get(event_type, []))
