"""Exception hierarchy for the ecovisor reproduction.

Every error raised by the library derives from :class:`EcovisorError` so
applications can catch library failures with a single handler, mirroring
how the paper's REST prototype maps failures onto HTTP error classes.
"""

from __future__ import annotations


class EcovisorError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(EcovisorError):
    """A subsystem was configured with invalid or inconsistent parameters."""


class UnknownContainerError(EcovisorError, KeyError):
    """An operation referenced a container id that does not exist."""

    def __init__(self, container_id: str):
        super().__init__(f"unknown container: {container_id!r}")
        self.container_id = container_id

    def __str__(self) -> str:
        # KeyError.__str__ repr()s the message; show it plainly instead.
        return self.args[0]


class UnknownApplicationError(EcovisorError, KeyError):
    """An operation referenced an application that is not registered."""

    def __init__(self, app_name: str):
        super().__init__(f"unknown application: {app_name!r}")
        self.app_name = app_name

    def __str__(self) -> str:
        return self.args[0]


class AuthorizationError(EcovisorError):
    """An application attempted to operate on a resource it does not own.

    The ecovisor multiplexes one physical energy system across many virtual
    ones (paper Section 3.3); each application may only touch its own
    containers and virtual battery.
    """


class SchedulingError(EcovisorError):
    """The orchestration platform could not place or scale a container."""


class InsufficientResourcesError(SchedulingError):
    """No server has enough free cores to satisfy an allocation request."""


class EnergyConservationError(EcovisorError):
    """An energy settlement violated conservation; indicates a library bug.

    Physics dictates the virtualized energy system is energy-conserving
    (paper Section 3.1).  This error is the runtime assertion of that
    invariant and should never surface during normal operation.
    """


class BudgetExhaustedError(EcovisorError):
    """A carbon budget was exhausted and the policy disallows overdraft."""


class TraceError(EcovisorError):
    """A trace (carbon, solar, or workload) was malformed or out of range."""


class UnknownTraceNameError(TraceError, ValueError):
    """A trace name failed to resolve against its known set.

    Raised for unknown carbon regions, price regimes, bundled dataset
    names, and generation specs.  Also a :class:`ValueError` so callers
    validating plain string arguments (CLI adapters, scenario builders)
    can catch it without importing the library hierarchy.  The message
    always lists the valid names.
    """

    def __init__(self, kind: str, name: str, known):
        super().__init__(
            f"unknown {kind} {name!r}; known {kind}s: "
            + ", ".join(sorted(known))
        )
        self.kind = kind
        self.name = name
        self.known = tuple(sorted(known))


class DatasetIntegrityError(TraceError):
    """A bundled dataset's bytes did not match its registered checksum.

    Provider-backed runs are only reproducible if the data they read is
    exactly the data the registry promises; a mismatch means a corrupted
    or locally edited file, and the run must not proceed on it.
    """


class ProviderError(EcovisorError):
    """A signal provider could not produce a value (fetch or parse failure)."""


class ScenarioError(EcovisorError):
    """A scenario definition or parameter override was invalid."""


class UnknownScenarioError(ScenarioError, KeyError):
    """An operation referenced a scenario that is not registered."""

    def __init__(self, name: str):
        super().__init__(f"unknown scenario: {name!r}")
        self.scenario_name = name

    def __str__(self) -> str:
        return self.args[0]


class SimulationError(EcovisorError):
    """The simulation engine reached an inconsistent state."""
