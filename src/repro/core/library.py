"""Library interfaces layered on the narrow API (paper Table 2).

The ecovisor API is deliberately minimal; richer abstractions live in
library code so "the additional complexity of using a virtual energy
system need not be borne by most applications" (Section 3.2) — the same
argument as exokernel library operating systems.  This module implements
the example library of Table 2:

- interval energy/carbon queries per container and per application,
- carbon *rate* limits (a threshold rate of emissions per unit time) and
  carbon *budgets* (a total limit), and
- change notifications for solar, carbon, price, and the virtual battery
  filling or emptying.

Rate limits are enforced cooperatively each tick: the library translates
the configured mg/s rate into per-container power caps at the tick
snapshot's carbon-intensity, using the Table 1 setters only —
demonstrating that the narrow API suffices to build these abstractions.

Notifications ride the typed :class:`~repro.core.signals.SignalBus`
(``api.signals``); the legacy ``notify_*`` methods remain as thin
deprecated delegates onto it.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.api import EcovisorAPI
from repro.core.clock import TickInfo
from repro.core.events import (
    BatteryEmptyEvent,
    BatteryFullEvent,
    CarbonChangeEvent,
    PriceChangeEvent,
    SolarChangeEvent,
)
from repro.core.signals import Subscription
from repro.core.state import EnergyState
from repro.core.units import power_for_carbon_rate


class AppEnergyLibrary:
    """Table 2 convenience layer for one application."""

    def __init__(self, api: EcovisorAPI):
        self._api = api
        self._app_name = api.app_name
        self._ecovisor = api.ecovisor
        self._db = self._ecovisor.database
        self._ledger = self._ecovisor.ledger
        self._container_rates_mg_s: Dict[str, float] = {}
        self._app_rate_mg_s: Optional[float] = None
        self._carbon_budget_g: Optional[float] = None
        self._api.register_tick(self._enforce_rates)

    @property
    def api(self) -> EcovisorAPI:
        return self._api

    # ------------------------------------------------------------------
    # Monitoring queries (Table 2)
    # ------------------------------------------------------------------
    def get_container_energy(self, container_id: str, t1: float, t2: float) -> float:
        """Energy (Wh) a container used over [t1, t2)."""
        return self._db.integrate_power_wh(
            f"container.{container_id}.power_w", t1, t2
        )

    def get_container_carbon(self, container_id: str, t1: float, t2: float) -> float:
        """Carbon (g) attributed to a container over [t1, t2)."""
        return self._db.total(f"container.{container_id}.carbon_g", t1, t2)

    def get_app_power(self) -> float:
        """The application's current power usage (W)."""
        return self._db.latest(f"app.{self._app_name}.power_w", default=0.0)

    def get_app_energy(self, t1: float, t2: float) -> float:
        """Energy (Wh) the application used over [t1, t2)."""
        return self._ledger.energy_between(self._app_name, t1, t2)

    def get_app_carbon(
        self, t1: float = 0.0, t2: Optional[float] = None
    ) -> float:
        """Carbon (g) attributed to the application; cumulative by default.

        The cumulative figure is read from the per-tick snapshot
        (``state().total_carbon_g``); interval queries still consult the
        ledger's settlements.
        """
        if t2 is None:
            return self._api.state().total_carbon_g
        return self._ledger.carbon_between(self._app_name, t1, t2)

    def get_app_cost(
        self, t1: float = 0.0, t2: Optional[float] = None
    ) -> float:
        """Grid cost ($) billed to the application; cumulative by default.

        The billing mirror of :meth:`get_app_carbon`: both are sums over
        the same per-tick settlements (market layer).
        """
        if t2 is None:
            return self._api.state().total_cost_usd
        return self._ledger.cost_between(self._app_name, t1, t2)

    # ------------------------------------------------------------------
    # Carbon rate and budget (Table 2)
    # ------------------------------------------------------------------
    def set_carbon_rate(
        self, container_id: str, rate_mg_per_s: Optional[float]
    ) -> None:
        """Cap a container's carbon emission rate (None removes the cap).

        Enforced each tick by converting the rate into a power cap at the
        current grid carbon-intensity.
        """
        if rate_mg_per_s is None:
            self._container_rates_mg_s.pop(container_id, None)
            self._api.set_container_powercap(container_id, None)
            return
        if rate_mg_per_s < 0:
            raise ValueError(f"carbon rate must be >= 0, got {rate_mg_per_s}")
        self._container_rates_mg_s[container_id] = rate_mg_per_s

    def set_app_carbon_rate(self, rate_mg_per_s: Optional[float]) -> None:
        """Cap the application's total carbon rate across its containers."""
        if rate_mg_per_s is not None and rate_mg_per_s < 0:
            raise ValueError(f"carbon rate must be >= 0, got {rate_mg_per_s}")
        self._app_rate_mg_s = rate_mg_per_s

    def set_carbon_budget(self, total_g: Optional[float]) -> None:
        """Set a total carbon budget for the application (None clears it)."""
        if total_g is not None and total_g < 0:
            raise ValueError(f"carbon budget must be >= 0, got {total_g}")
        self._carbon_budget_g = total_g

    @property
    def carbon_budget_g(self) -> Optional[float]:
        return self._carbon_budget_g

    def remaining_budget_g(self) -> Optional[float]:
        """Budget minus cumulative emissions; None when no budget is set."""
        if self._carbon_budget_g is None:
            return None
        return self._carbon_budget_g - self.get_app_carbon()

    def budget_exceeded(self) -> bool:
        remaining = self.remaining_budget_g()
        return remaining is not None and remaining < 0

    # ------------------------------------------------------------------
    # Notifications (Table 2) — deprecated delegates onto api.signals
    # ------------------------------------------------------------------
    def notify_solar_change(
        self, callback: Callable[[SolarChangeEvent], None]
    ) -> Subscription:
        """Invoke ``callback`` when this app's virtual solar output changes.

        .. deprecated:: v1  Use ``api.signals.on(SolarChange, callback)``.
        """
        return self._api.signals.on(SolarChangeEvent, callback)

    def notify_carbon_change(
        self, callback: Callable[[CarbonChangeEvent], None]
    ) -> Subscription:
        """Invoke ``callback`` when grid carbon-intensity changes.

        .. deprecated:: v1  Use ``api.signals.on(CarbonChange, callback)``.
        """
        return self._api.signals.on(CarbonChangeEvent, callback)

    def notify_price_change(
        self, callback: Callable[[PriceChangeEvent], None]
    ) -> Subscription:
        """Invoke ``callback`` when the grid electricity price changes.

        .. deprecated:: v1  Use ``api.signals.on(PriceChange, callback)``.
        """
        return self._api.signals.on(PriceChangeEvent, callback)

    def notify_battery_full(
        self, callback: Callable[[BatteryFullEvent], None]
    ) -> Subscription:
        """Invoke ``callback`` when this app's virtual battery fills.

        .. deprecated:: v1  Use ``api.signals.on(BatteryFull, callback)``.
        """
        return self._api.signals.on(BatteryFullEvent, callback)

    def notify_battery_empty(
        self, callback: Callable[[BatteryEmptyEvent], None]
    ) -> Subscription:
        """Invoke ``callback`` when this app's virtual battery empties.

        .. deprecated:: v1  Use ``api.signals.on(BatteryEmpty, callback)``.
        """
        return self._api.signals.on(BatteryEmptyEvent, callback)

    # ------------------------------------------------------------------
    # Per-tick rate enforcement (cooperative, built on Table 1 setters)
    # ------------------------------------------------------------------
    def _enforce_rates(self, tick: TickInfo, state: EnergyState) -> None:
        intensity = state.grid_carbon_g_per_kwh
        for container_id, rate in self._container_rates_mg_s.items():
            if not self._ecovisor.platform.has_container(container_id):
                continue
            cap_w = power_for_carbon_rate(rate, intensity)
            self._api.set_container_powercap(container_id, cap_w)
        if self._app_rate_mg_s is not None:
            containers = self._api.list_containers()
            if containers:
                per_container_rate = self._app_rate_mg_s / len(containers)
                cap_w = power_for_carbon_rate(per_container_rate, intensity)
                for container in containers:
                    self._api.set_container_powercap(container.id, cap_w)
