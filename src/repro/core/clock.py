"""Simulation clock.

The ecovisor discretizes and accounts for power over a small tick interval
``delta_t`` (paper Section 3.1, default one minute).  Everything in this
reproduction advances on that clock: the physical energy system is sampled
at tick boundaries, applications receive their ``tick()`` upcall once per
interval, and the settlement of energy and carbon covers exactly one
interval.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigurationError
from repro.core.units import SECONDS_PER_HOUR, SECONDS_PER_MINUTE, format_duration

DEFAULT_TICK_INTERVAL_S = SECONDS_PER_MINUTE


@dataclass(frozen=True)
class TickInfo:
    """Immutable snapshot describing one tick interval.

    Attributes:
        index: zero-based tick counter.
        start_s: simulation time at the start of the interval (seconds).
        duration_s: interval length (seconds).
    """

    index: int
    start_s: float
    duration_s: float

    @property
    def end_s(self) -> float:
        """Simulation time at the end of the interval."""
        return self.start_s + self.duration_s

    @property
    def start_hours(self) -> float:
        """Interval start expressed in hours, convenient for trace lookup."""
        return self.start_s / SECONDS_PER_HOUR


class SimulationClock:
    """Monotonic tick-based clock driving the simulation.

    The clock starts at time zero (callers may interpret zero as any
    wall-clock anchor; traces are indexed in seconds-from-start).
    """

    def __init__(self, tick_interval_s: float = DEFAULT_TICK_INTERVAL_S):
        if tick_interval_s <= 0:
            raise ConfigurationError(
                f"tick interval must be positive, got {tick_interval_s}"
            )
        self._tick_interval_s = float(tick_interval_s)
        self._tick_index = 0

    @property
    def tick_interval_s(self) -> float:
        """Length of one tick interval in seconds (the paper's delta-t)."""
        return self._tick_interval_s

    @property
    def tick_index(self) -> int:
        """Number of completed ticks."""
        return self._tick_index

    @property
    def now_s(self) -> float:
        """Current simulation time in seconds."""
        return self._tick_index * self._tick_interval_s

    @property
    def now_hours(self) -> float:
        """Current simulation time in hours."""
        return self.now_s / SECONDS_PER_HOUR

    def current_tick(self) -> TickInfo:
        """Describe the interval that begins at the current time."""
        return TickInfo(
            index=self._tick_index,
            start_s=self.now_s,
            duration_s=self._tick_interval_s,
        )

    def advance(self) -> TickInfo:
        """Advance by one tick and return the interval that just began."""
        self._tick_index += 1
        return self.current_tick()

    def reset(self) -> None:
        """Rewind the clock to time zero (used between experiment runs)."""
        self._tick_index = 0

    def ticks_for_duration(self, duration_s: float) -> int:
        """Number of whole ticks covering ``duration_s`` (rounded up)."""
        if duration_s < 0:
            raise ConfigurationError(f"duration must be >= 0, got {duration_s}")
        whole = int(duration_s // self._tick_interval_s)
        if whole * self._tick_interval_s < duration_s:
            whole += 1
        return whole

    def __repr__(self) -> str:
        return (
            f"SimulationClock(t={format_duration(self.now_s)}, "
            f"tick={self._tick_index}, dt={self._tick_interval_s:g}s)"
        )
