"""The ecovisor.

The ecovisor is akin to a hypervisor, but virtualizes the energy system of
computing infrastructure rather than the computing resources of a single
server (paper Section 1).  It has privileged access to:

- the physical energy system's component APIs (battery charge controller,
  solar inverter, grid meter),
- the container orchestration platform's management functions (to enforce
  per-container power caps via utilization limits), and
- energy/carbon monitoring services,

and multiplexes them across per-application
:class:`~repro.core.virtual_energy_system.VirtualEnergySystem` instances
(Section 3.3).  Because each virtual battery's rate limits are the
application's fraction of the physical limits, aggregate physical limits
hold by construction.

Tick protocol (driven by :class:`~repro.sim.engine.SimulationEngine`):

1. :meth:`begin_tick` — sample solar and carbon, refresh each app's
   virtual solar (with the one-tick solar buffer of Section 3.1), publish
   change events.
2. :meth:`invoke_app_ticks` — deliver the ``tick()`` upcall to every
   registered application callback.
3. (the engine steps workloads, which set container utilization demands)
4. :meth:`settle` — measure per-app power, settle each virtual energy
   system, attribute carbon to apps and containers, persist telemetry,
   publish battery full/empty events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.carbon.service import CarbonIntensityService
from repro.cluster.container import Container
from repro.cluster.cop import ContainerOrchestrationPlatform
from repro.core.accounting import CarbonLedger, TickSettlement
from repro.core.clock import TickInfo
from repro.core.config import EcovisorConfig, ShareConfig
from repro.core.errors import (
    AuthorizationError,
    ConfigurationError,
    UnknownApplicationError,
)
from repro.core.events import (
    BatteryEmptyEvent,
    BatteryFullEvent,
    CarbonChangeEvent,
    EventBus,
    PriceChangeEvent,
    SolarChangeEvent,
    TickEvent,
)
from repro.core.virtual_battery import VirtualBattery
from repro.core.virtual_energy_system import VirtualEnergySystem
from repro.energy.system import PhysicalEnergySystem
from repro.market.service import PriceSignal
from repro.telemetry.monitor import PowerMonitor
from repro.telemetry.timeseries import TimeSeriesDatabase

TickCallback = Callable[[TickInfo], None]


@dataclass
class _RegisteredApp:
    """Internal bookkeeping for one registered application."""

    name: str
    ves: VirtualEnergySystem
    tick_callbacks: List[TickCallback] = field(default_factory=list)
    previous_solar_w: float = 0.0
    battery_was_full: bool = False
    battery_was_empty: bool = False


class Ecovisor:
    """Multiplexes one physical energy system across applications."""

    def __init__(
        self,
        plant: PhysicalEnergySystem,
        platform: ContainerOrchestrationPlatform,
        carbon_service: CarbonIntensityService,
        config: EcovisorConfig | None = None,
        database: TimeSeriesDatabase | None = None,
        price_signal: Optional[PriceSignal] = None,
    ):
        self._plant = plant
        self._platform = platform
        self._carbon_service = carbon_service
        self._price_signal = price_signal
        self._config = config or EcovisorConfig()
        self._config.validate()
        self._db = database or TimeSeriesDatabase()
        self._monitor = PowerMonitor(platform, self._db)
        self._ledger = CarbonLedger()
        self._bus = EventBus()
        self._apps: Dict[str, _RegisteredApp] = {}
        self._allocated_solar = 0.0
        self._allocated_battery = 0.0
        self._current_carbon = 0.0
        self._previous_carbon: Optional[float] = None
        self._current_price = 0.0
        self._previous_price: Optional[float] = None
        # Tracked explicitly (not via `or None` as for carbon) because a
        # 0.0 price is legitimate — real-time prices floor at zero.
        self._price_sampled = False
        self._physical_solar_now_w = 0.0
        self._buffered_solar_w: Optional[float] = None

    # ------------------------------------------------------------------
    # Wiring and registration
    # ------------------------------------------------------------------
    @property
    def config(self) -> EcovisorConfig:
        return self._config

    @property
    def platform(self) -> ContainerOrchestrationPlatform:
        return self._platform

    @property
    def plant(self) -> PhysicalEnergySystem:
        return self._plant

    @property
    def carbon_service(self) -> CarbonIntensityService:
        return self._carbon_service

    @property
    def price_signal(self) -> Optional[PriceSignal]:
        """The attached electricity-price feed; None when cost-free."""
        return self._price_signal

    @property
    def has_market(self) -> bool:
        return self._price_signal is not None

    @property
    def database(self) -> TimeSeriesDatabase:
        return self._db

    @property
    def ledger(self) -> CarbonLedger:
        return self._ledger

    @property
    def events(self) -> EventBus:
        return self._bus

    def app_names(self) -> List[str]:
        return sorted(self._apps)

    def register_app(self, name: str, share: ShareConfig) -> VirtualEnergySystem:
        """Create an application's virtual energy system from its share.

        An exogenous policy determines shares (Section 3.3); the ecovisor
        only enforces that allocations do not oversubscribe the plant.
        """
        if name in self._apps:
            raise ConfigurationError(f"application {name!r} already registered")
        share.validate()
        if self._allocated_solar + share.solar_fraction > 1.0 + 1e-9:
            raise ConfigurationError(
                f"solar oversubscribed: {self._allocated_solar:.2f} allocated, "
                f"{share.solar_fraction:.2f} requested"
            )
        if self._allocated_battery + share.battery_fraction > 1.0 + 1e-9:
            raise ConfigurationError(
                f"battery oversubscribed: {self._allocated_battery:.2f} allocated, "
                f"{share.battery_fraction:.2f} requested"
            )
        battery: Optional[VirtualBattery] = None
        if share.battery_fraction > 0.0:
            if not self._plant.has_battery:
                raise ConfigurationError(
                    "battery share requested but the plant has no battery"
                )
            battery = VirtualBattery(
                self._plant.battery.config, share.battery_fraction
            )
        if share.solar_fraction > 0.0 and not self._plant.has_solar:
            raise ConfigurationError(
                "solar share requested but the plant has no solar array"
            )
        ves = VirtualEnergySystem(name, share, battery)
        self._apps[name] = _RegisteredApp(name=name, ves=ves)
        self._allocated_solar += share.solar_fraction
        self._allocated_battery += share.battery_fraction
        return ves

    def _app(self, name: str) -> _RegisteredApp:
        try:
            return self._apps[name]
        except KeyError:
            raise UnknownApplicationError(name) from None

    def ves_for(self, name: str) -> VirtualEnergySystem:
        return self._app(name).ves

    def register_tick_callback(self, name: str, callback: TickCallback) -> None:
        """Register an application's ``tick()`` upcall (Table 1)."""
        self._app(name).tick_callbacks.append(callback)

    # ------------------------------------------------------------------
    # Privileged container operations (ownership-checked)
    # ------------------------------------------------------------------
    def _owned_container(self, app_name: str, container_id: str) -> Container:
        container = self._platform.get_container(container_id)
        if container.app_name != app_name:
            raise AuthorizationError(
                f"application {app_name!r} does not own container {container_id!r}"
            )
        return container

    def launch_container(
        self,
        app_name: str,
        cores: float,
        gpu: bool = False,
        role: str = Container.DEFAULT_ROLE,
    ) -> Container:
        self._app(app_name)  # must be registered
        return self._platform.launch_container(app_name, cores, gpu=gpu, role=role)

    def stop_container(self, app_name: str, container_id: str) -> None:
        self._owned_container(app_name, container_id)
        self._platform.stop_container(container_id)

    def scale_app_to(
        self,
        app_name: str,
        count: int,
        cores: float,
        gpu: bool = False,
        role: str = Container.DEFAULT_ROLE,
    ) -> List[Container]:
        self._app(app_name)
        return self._platform.scale_app_to(app_name, count, cores, gpu=gpu, role=role)

    def set_container_cores(
        self, app_name: str, container_id: str, cores: float
    ) -> None:
        self._owned_container(app_name, container_id)
        self._platform.set_container_cores(container_id, cores)

    def set_container_powercap(
        self, app_name: str, container_id: str, cap_w: Optional[float]
    ) -> None:
        self._owned_container(app_name, container_id)
        self._platform.set_power_cap(container_id, cap_w)

    def containers_for(self, app_name: str) -> List[Container]:
        return self._platform.running_containers_for(app_name)

    # ------------------------------------------------------------------
    # Tick phases
    # ------------------------------------------------------------------
    def begin_tick(self, tick: TickInfo) -> None:
        """Sample the environment, refresh virtual views, publish events."""
        time_s = tick.start_s
        physical_solar = self._plant.solar_power_w(time_s)
        if not self._config.solar_buffer_enabled or self._buffered_solar_w is None:
            # Buffer disabled (ablation), or first tick where no buffered
            # interval exists yet: expose the current sample directly.
            visible_solar = physical_solar
        else:
            # One-tick buffer (Section 3.1): applications are shown the
            # solar output measured over the previous interval, which the
            # ecovisor banked in reserved battery capacity.
            visible_solar = self._buffered_solar_w
        self._buffered_solar_w = physical_solar
        self._physical_solar_now_w = visible_solar

        self._previous_carbon = self._current_carbon or None
        self._current_carbon = self._carbon_service.observe(time_s)
        self._monitor.record_carbon_intensity(time_s, self._current_carbon)

        if (
            self._previous_carbon is not None
            and abs(self._current_carbon - self._previous_carbon)
            >= self._config.carbon_change_threshold_g_per_kwh
        ):
            self._bus.publish(
                CarbonChangeEvent(
                    time_s=time_s,
                    previous_g_per_kwh=self._previous_carbon,
                    current_g_per_kwh=self._current_carbon,
                )
            )

        if self._price_signal is not None:
            self._previous_price = (
                self._current_price if self._price_sampled else None
            )
            self._current_price = self._price_signal.observe(time_s)
            self._price_sampled = True
            self._monitor.record_grid_price(time_s, self._current_price)
            if (
                self._previous_price is not None
                and abs(self._current_price - self._previous_price)
                >= self._config.price_change_threshold_usd_per_kwh
            ):
                self._bus.publish(
                    PriceChangeEvent(
                        time_s=time_s,
                        previous_usd_per_kwh=self._previous_price,
                        current_usd_per_kwh=self._current_price,
                    )
                )

        for app in self._apps.values():
            new_solar = app.ves.update_solar(visible_solar)
            if (
                abs(new_solar - app.previous_solar_w)
                >= self._config.solar_change_threshold_w * app.ves.share.solar_fraction
                and app.ves.share.solar_fraction > 0.0
            ):
                self._bus.publish(
                    SolarChangeEvent(
                        time_s=time_s,
                        app_name=app.name,
                        previous_w=app.previous_solar_w,
                        current_w=new_solar,
                    )
                )
            app.previous_solar_w = new_solar

        self._bus.publish(TickEvent(time_s=time_s, tick_index=tick.index))

    def invoke_app_ticks(self, tick: TickInfo) -> None:
        """Deliver the ``tick()`` upcall to every registered callback."""
        for app in self._apps.values():
            for callback in list(app.tick_callbacks):
                callback(tick)

    def settle(self, tick: TickInfo) -> Dict[str, float]:
        """Settle every application's tick; returns served-energy fractions.

        The fraction is 1.0 when the virtual energy system fully met the
        application's demand, lower when the grid share was insufficient —
        power shortages that applications experience as degraded capacity.
        """
        time_s = tick.start_s
        duration_s = tick.duration_s
        fractions: Dict[str, float] = {}
        total_grid_w = 0.0
        total_solar_used_w = 0.0

        container_readings = self._monitor.sample_containers(time_s)
        self._monitor.sample_apps(time_s, self._apps.keys())
        self._monitor.sample_cluster(time_s)

        for app in self._apps.values():
            demand_w = self._platform.app_power_w(app.name)
            settlement = app.ves.settle(
                demand_w,
                self._current_carbon,
                time_s,
                duration_s,
                price_usd_per_kwh=self._current_price,
            )
            self._ledger.record(settlement)
            self._record_app_telemetry(app, settlement, time_s)
            self._attribute_to_containers(
                app.name, settlement, container_readings, duration_s
            )
            self._publish_battery_events(app, time_s)
            fractions[app.name] = (
                settlement.served_wh / settlement.demand_wh
                if settlement.demand_wh > 1e-12
                else 1.0
            )
            if duration_s > 0:
                total_grid_w += settlement.grid_total_wh * 3600.0 / duration_s
                total_solar_used_w += (
                    (settlement.solar_used_wh + settlement.solar_to_battery_wh)
                    * 3600.0
                    / duration_s
                )

        if self._plant.has_grid and total_grid_w > 0:
            self._plant.grid.draw(total_grid_w, duration_s)
        if self._plant.has_solar and total_solar_used_w > 0:
            self._plant.solar.deliver(total_solar_used_w, duration_s)

        aggregate_battery_wh = sum(
            app.ves.battery.battery.level_wh
            for app in self._apps.values()
            if app.ves.has_battery
        )
        self._monitor.record_plant(
            time_s,
            solar_w=self._physical_solar_now_w,
            battery_level_wh=aggregate_battery_wh,
            grid_power_w=total_grid_w,
        )
        return fractions

    # ------------------------------------------------------------------
    # Settlement helpers
    # ------------------------------------------------------------------
    def _record_app_telemetry(
        self, app: _RegisteredApp, settlement: TickSettlement, time_s: float
    ) -> None:
        name = app.name
        self._db.record(f"app.{name}.carbon_g", time_s, settlement.carbon_g)
        if self._price_signal is not None:
            self._db.record(f"app.{name}.cost_usd", time_s, settlement.cost_usd)
        self._db.record(
            f"app.{name}.grid_power_w",
            time_s,
            settlement.grid_total_wh * 3600.0 / settlement.duration_s
            if settlement.duration_s > 0
            else 0.0,
        )
        self._db.record(f"app.{name}.solar_used_wh", time_s, settlement.solar_used_wh)
        self._db.record(f"app.{name}.unmet_wh", time_s, settlement.unmet_wh)
        self._monitor.record_app_carbon_rate(
            time_s, name, settlement.carbon_rate_mg_per_s
        )
        if app.ves.has_battery:
            battery = app.ves.battery
            self._db.record(
                f"app.{name}.battery_soc", time_s, battery.soc_fraction
            )
            self._db.record(
                f"app.{name}.battery_level_wh", time_s, battery.usable_wh
            )
            # Signed battery power: positive while charging, negative
            # while discharging (the convention of Figure 9b).
            self._db.record(
                f"app.{name}.battery_power_w",
                time_s,
                battery.last_charge_w - battery.last_discharge_w,
            )

    def _attribute_to_containers(
        self,
        app_name: str,
        settlement: TickSettlement,
        container_readings: Dict[str, float],
        duration_s: float,
    ) -> None:
        """Split an app's settled energy and carbon across its containers.

        Attribution is proportional to each container's share of the
        application's measured power, the same resource-usage-based
        attribution as the prototype [48, 60].
        """
        containers = self._platform.running_containers_for(app_name)
        total_power = sum(container_readings.get(c.id, 0.0) for c in containers)
        for container in containers:
            power = container_readings.get(container.id, 0.0)
            fraction = power / total_power if total_power > 1e-12 else 0.0
            energy = settlement.served_wh * fraction
            carbon = settlement.carbon_g * fraction
            container.record_tick(power, energy, carbon)
            self._db.record(
                f"container.{container.id}.carbon_g", settlement.time_s, carbon
            )

    def _publish_battery_events(self, app: _RegisteredApp, time_s: float) -> None:
        if not app.ves.has_battery:
            return
        battery = app.ves.battery
        if battery.is_full and not app.battery_was_full:
            self._bus.publish(
                BatteryFullEvent(
                    time_s=time_s,
                    app_name=app.name,
                    charge_level_wh=battery.usable_wh,
                )
            )
        app.battery_was_full = battery.is_full
        if battery.is_empty and not app.battery_was_empty:
            self._bus.publish(BatteryEmptyEvent(time_s=time_s, app_name=app.name))
        app.battery_was_empty = battery.is_empty

    # ------------------------------------------------------------------
    # Current environment readings (back the Table 1 getters)
    # ------------------------------------------------------------------
    @property
    def current_carbon_g_per_kwh(self) -> float:
        return self._current_carbon

    @property
    def current_price_usd_per_kwh(self) -> float:
        """Grid electricity price this tick (0.0 when no market attached)."""
        return self._current_price

    @property
    def physical_solar_w(self) -> float:
        """Solar power visible to applications this tick (post-buffer)."""
        return self._physical_solar_now_w
