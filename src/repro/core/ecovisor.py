"""The ecovisor.

The ecovisor is akin to a hypervisor, but virtualizes the energy system of
computing infrastructure rather than the computing resources of a single
server (paper Section 1).  It has privileged access to:

- the physical energy system's component APIs (battery charge controller,
  solar inverter, grid meter),
- the container orchestration platform's management functions (to enforce
  per-container power caps via utilization limits), and
- energy/carbon monitoring services,

and multiplexes them across per-application
:class:`~repro.core.virtual_energy_system.VirtualEnergySystem` instances
(Section 3.3).  Because each virtual battery's rate limits are the
application's fraction of the physical limits, aggregate physical limits
hold by construction.

Tick protocol (driven by :class:`~repro.sim.engine.SimulationEngine`):

1. :meth:`begin_tick` — sample solar and carbon, refresh each app's
   virtual solar (with the one-tick solar buffer of Section 3.1), build
   each app's immutable :class:`~repro.core.state.EnergyState` snapshot,
   then publish change events (so event subscribers observe the fresh
   snapshot).
2. :meth:`invoke_app_ticks` — deliver the ``tick()`` upcall to every
   registered application callback.  Two-parameter callbacks receive
   ``(tick, state)`` — the snapshot built in step 1; one-parameter
   callbacks keep the legacy ``(tick)`` shape (arity is inspected at
   registration).
3. (the engine steps workloads, which set container utilization demands)
4. :meth:`settle` — measure per-app power, settle each virtual energy
   system, attribute carbon to apps and containers, finalize each app's
   snapshot with the settled figures, persist telemetry from the
   snapshot, publish battery full/empty events.

Each application's snapshot is *built* exactly once per tick (the
``state_builds`` counter) and *finalized* in place by settlement — every
consumer (policies, library, REST, telemetry) shares it by reference
instead of re-polling live getters.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from types import MappingProxyType
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.carbon.service import CarbonIntensityService
from repro.cluster.container import Container
from repro.cluster.cop import ContainerOrchestrationPlatform
from repro.core.accounting import AppAccount, CarbonLedger, TickSettlement
from repro.core.clock import TickInfo
from repro.core.config import EcovisorConfig, ShareConfig
from repro.core.errors import (
    AuthorizationError,
    ConfigurationError,
    UnknownApplicationError,
)
from repro.core.events import (
    AppAdmittedEvent,
    AppEvictedEvent,
    BatteryEmptyEvent,
    BatteryFullEvent,
    CarbonChangeEvent,
    Event,
    EventBus,
    PriceChangeEvent,
    ShareChangedEvent,
    SolarChangeEvent,
    TickEvent,
)
from repro.core.fleetarrays import FleetArrays
from repro.core.journal import EventJournal, JournalPage
from repro.core.signals import SignalBus
from repro.core.state import BatteryState, EnergyState, RowEnergyState
from repro.core.tracecache import SignalTraceCache, build_signal_cache
from repro.core.virtual_battery import VirtualBattery
from repro.core.virtual_energy_system import VirtualEnergySystem
from repro.energy.system import PhysicalEnergySystem
from repro.market.service import PriceSignal
from repro.obs.metrics import MetricsRegistry
from repro.telemetry.monitor import PowerMonitor
from repro.telemetry.timeseries import Series, TimeSeriesDatabase

TickCallback = Callable[..., None]


def _callback_arity(callback: TickCallback) -> int:
    """1 for legacy ``cb(tick)`` callbacks, 2 for ``cb(tick, state)``.

    The back-compat shim of the v1 API: arity is inspected once at
    registration, so both shapes coexist on the same bus.  Callables
    whose signature cannot be inspected (builtins like ``list.append``)
    default to the legacy single-argument shape.
    """
    try:
        signature = inspect.signature(callback)
    except (TypeError, ValueError):
        return 1
    positional = 0
    for parameter in signature.parameters.values():
        if parameter.kind == parameter.VAR_POSITIONAL:
            return 2
        if parameter.kind in (
            parameter.POSITIONAL_ONLY,
            parameter.POSITIONAL_OR_KEYWORD,
        ):
            positional += 1
    return 2 if positional >= 2 else 1


@dataclass(slots=True)
class _RegisteredApp:
    """Internal bookkeeping for one registered application.

    ``tick_callbacks`` is a tuple rebuilt on registration so the upcall
    loop iterates it directly (the tuple *is* the snapshot) instead of
    copying a list every app every tick.  ``solar_event_threshold_w``
    is the app's share-scaled solar-change threshold, hoisted out of the
    per-tick loop.  ``telemetry`` caches the app's settlement series
    handles (built lazily on first settle).
    """

    name: str
    ves: VirtualEnergySystem
    tick_callbacks: Tuple[Tuple[TickCallback, int], ...] = ()
    previous_solar_w: float = 0.0
    battery_was_full: bool = False
    battery_was_empty: bool = False
    state: Optional[EnergyState] = None
    solar_event_threshold_w: float = 0.0
    has_solar_share: bool = False
    telemetry: Optional[Dict[str, Series]] = None
    # Columnar bookkeeping: the app's persistent array row, its dense
    # index into the current FleetSnapshot (valid while snap_epoch
    # matches the fleet's), and the tick phase its cached lazy view was
    # built for.
    row: int = -1
    snap_index: int = -1
    snap_epoch: int = -1
    state_stamp: int = -1


class Ecovisor:
    """Multiplexes one physical energy system across applications."""

    def __init__(
        self,
        plant: PhysicalEnergySystem,
        platform: ContainerOrchestrationPlatform,
        carbon_service: CarbonIntensityService,
        config: EcovisorConfig | None = None,
        database: TimeSeriesDatabase | None = None,
        price_signal: Optional[PriceSignal] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self._plant = plant
        self._platform = platform
        self._carbon_service = carbon_service
        self._price_signal = price_signal
        self._config = config or EcovisorConfig()
        self._config.validate()
        self._db = database or TimeSeriesDatabase()
        self._monitor = PowerMonitor(platform, self._db)
        self._ledger = CarbonLedger()
        self._bus = EventBus()
        self._apps: Dict[str, _RegisteredApp] = {}
        self._allocated_solar = 0.0
        self._allocated_battery = 0.0
        self._current_carbon = 0.0
        self._previous_carbon: Optional[float] = None
        self._current_price = 0.0
        self._previous_price: Optional[float] = None
        # Tracked explicitly (not via `or None` as for carbon) because a
        # 0.0 price is legitimate — real-time prices floor at zero.
        self._price_sampled = False
        self._physical_solar_now_w = 0.0
        self._buffered_solar_w: Optional[float] = None
        self._current_tick_index = 0
        self._current_tick_duration_s = self._config.tick_interval_s
        self._carbon_sample_time_s = 0.0
        self._state_builds = 0
        #: Batched hot path toggle: with True (the default) settlement
        #: reuses the monitor's one bulk container-power pass and
        #: ``begin_tick`` reads primed signal arrays when available;
        #: with False every phase re-derives its inputs per application
        #: (the fallback loop the parity tests compare against).
        self.batched = True
        self._signal_cache: Optional[SignalTraceCache] = None
        # Columnar hot path (core/fleetarrays.py): fleet state lives in
        # struct-of-arrays rows, snapshots are lazy RowEnergyState views,
        # and telemetry/ledger writes buffer until first read.  Off by
        # default; the engine enables it alongside `batched`.
        self._columnar = False
        self._fleet: Optional[FleetArrays] = None
        self._phase_stamp = 0
        self._flushing = False
        self._flush_hooks_installed = False
        self._flush_series: Dict[str, Series] = {}
        self._container_carbon_series: Dict[str, Series] = {}
        # Control plane v1.1: per-app event journals backing the REST
        # cursor feed, share rebalances staged until the next tick
        # boundary, and a flag marking the begin_tick..settle window so
        # mid-tick admissions get a (counted) snapshot immediately.
        self._journal = EventJournal()
        self._pending_shares: Dict[str, ShareConfig] = {}
        self._in_tick = False
        self._ticks_begun = 0
        # Signal buses handed out per app (via EcovisorAPI.signals);
        # tracked so eviction can cancel the app's subscriptions —
        # broadcast signals carry no app_name, so a dead app's
        # callbacks would otherwise keep firing after eviction.
        self._signal_buses: Dict[str, List[SignalBus]] = {}
        # Observability (obs/): one standalone registry per ecovisor by
        # default, so sweep and test runs don't leak series into the
        # process-wide registry; pass `metrics=default_registry()` (or
        # a child of it) to attach this instance to a shared scrape.
        # Hot paths keep plain int counters — the registry reads them
        # through collect-time callbacks, so being observable costs the
        # tick loop nothing.
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        # Bumped whenever the upcall registration surface changes (app
        # admitted/evicted, tick callback registered); the vectorized
        # upcall plane (core/upcalls.py) keys its grouping on it and
        # detects mid-delivery changes between items.
        self._upcall_epoch = 0
        #: The engine's :class:`~repro.obs.profiler.TickProfiler`
        #: (installed by SimulationEngine; None for a bare ecovisor).
        self.profiler = None
        self._trace_cache_hits = 0
        self._trace_cache_misses = 0
        self._register_metric_callbacks()

    # ------------------------------------------------------------------
    # Wiring and registration
    # ------------------------------------------------------------------
    @property
    def config(self) -> EcovisorConfig:
        return self._config

    @property
    def platform(self) -> ContainerOrchestrationPlatform:
        return self._platform

    @property
    def plant(self) -> PhysicalEnergySystem:
        return self._plant

    @property
    def carbon_service(self) -> CarbonIntensityService:
        return self._carbon_service

    @property
    def price_signal(self) -> Optional[PriceSignal]:
        """The attached electricity-price feed; None when cost-free."""
        return self._price_signal

    @property
    def has_market(self) -> bool:
        return self._price_signal is not None

    @property
    def database(self) -> TimeSeriesDatabase:
        return self._db

    @property
    def ledger(self) -> CarbonLedger:
        return self._ledger

    @property
    def events(self) -> EventBus:
        return self._bus

    @property
    def journal(self) -> EventJournal:
        """Per-application bounded event journals (REST cursor feed)."""
        return self._journal

    @property
    def metrics(self) -> MetricsRegistry:
        """This instance's metrics registry (``GET /v1/metrics`` source)."""
        return self._metrics

    def _register_metric_callbacks(self) -> None:
        """Expose the hot-path counters through collect-time callbacks.

        The journal, trace cache, and columnar store keep plain integer
        attributes; these callbacks read them only when the registry is
        scraped or rendered, so the tick loop never touches a metric
        object.
        """
        registry = self._metrics
        registry.counter_fn(
            "ticks_begun_total",
            "Engine ticks started (begin_tick calls).",
            lambda: self._ticks_begun,
        )
        registry.counter_fn(
            "state_builds_total",
            "Per-tick EnergyState snapshots built (ticks x apps).",
            lambda: self._state_builds,
        )
        registry.gauge_fn(
            "apps_registered",
            "Applications currently registered.",
            lambda: len(self._apps),
        )
        registry.counter_fn(
            "journal_dropped_total",
            "Events evicted from bounded per-app journal feeds.",
            lambda: self._journal.overflow_dropped_total,
        )
        registry.counter_fn(
            "trace_cache_hits_total",
            "begin_tick signal lookups served from the primed cache.",
            lambda: self._trace_cache_hits,
        )
        registry.counter_fn(
            "trace_cache_misses_total",
            "begin_tick signal lookups that fell back to live sampling.",
            lambda: self._trace_cache_misses,
        )
        registry.counter_fn(
            "fleet_rows_acquired_total",
            "Columnar fleet rows handed out (first use + reuse).",
            lambda: self._fleet.rows_acquired if self._fleet else 0,
        )
        registry.counter_fn(
            "fleet_rows_reused_total",
            "Columnar fleet row acquisitions served from the free list.",
            lambda: self._fleet.rows_reused if self._fleet else 0,
        )
        registry.counter_fn(
            "fleet_rows_released_total",
            "Columnar fleet rows returned to the free list.",
            lambda: self._fleet.rows_released if self._fleet else 0,
        )
        registry.counter_fn(
            "fleet_grow_total",
            "Columnar fleet capacity-doubling resizes.",
            lambda: self._fleet.grow_count if self._fleet else 0,
        )
        registry.gauge_fn(
            "fleet_capacity_rows",
            "Columnar fleet allocated row capacity.",
            lambda: self._fleet.capacity if self._fleet else 0,
        )

    def signal_bus_for(self, name: str) -> SignalBus:
        """A typed signal bus scoped to ``name``, tracked for eviction.

        Every bus handed out here has its subscriptions cancelled when
        the application is evicted, so a dead tenant's callbacks can
        never fire into a later tick.
        """
        self._app(name)
        bus = SignalBus(self._bus, name)
        self._signal_buses.setdefault(name, []).append(bus)
        return bus

    def events_for(
        self, name: str, cursor: int = 0, limit: Optional[int] = None
    ) -> JournalPage:
        """Cursor-paged read of an application's journaled signals.

        Unlike the other per-app accessors this stays readable after
        eviction, so an external controller can tail the terminal
        :class:`AppEvictedEvent`.
        """
        return self._journal.read(name, cursor=cursor, limit=limit)

    def _publish(self, event: Event) -> None:
        """Publish on the bus and journal the signal per application.

        Application-scoped signals (``app_name`` set) land in that app's
        feed; broadcast signals (carbon/price changes) land in every
        registered app's feed — mirroring the :class:`SignalBus`
        delivery scoping.  :class:`TickEvent` is not journaled (see
        :mod:`repro.core.journal`).
        """
        self._bus.publish(event)
        if isinstance(event, TickEvent):
            return
        app_name = getattr(event, "app_name", None)
        journal = self._journal
        if app_name:
            journal.record(app_name, event)
        else:
            for name in self._apps:
                journal.record(name, event)

    @property
    def state_builds(self) -> int:
        """How many per-tick :class:`EnergyState` snapshots have been built.

        Exactly ``ticks x apps`` over an engine run: settlement
        finalizes the existing snapshot instead of building a new one,
        and on-demand bootstrap snapshots (pre-first-tick ``state()``
        reads) are not counted.
        """
        return self._state_builds

    def app_names(self) -> List[str]:
        return sorted(self._apps)

    def has_app(self, name: str) -> bool:
        """Whether ``name`` is currently registered (O(1))."""
        return name in self._apps

    @property
    def allocated_solar_fraction(self) -> float:
        """Sum of registered applications' solar fractions."""
        return self._allocated_solar

    @property
    def allocated_battery_fraction(self) -> float:
        """Sum of registered applications' battery fractions."""
        return self._allocated_battery

    def _check_share_headroom(
        self, share: ShareConfig, freed: Optional[ShareConfig] = None
    ) -> None:
        """Validate a requested share against plant capability and headroom.

        ``freed`` is an allocation being released by the same operation
        (the app's current share during a rebalance).
        """
        share.validate()
        freed_solar = freed.solar_fraction if freed is not None else 0.0
        freed_battery = freed.battery_fraction if freed is not None else 0.0
        allocated_solar = self._allocated_solar - freed_solar
        allocated_battery = self._allocated_battery - freed_battery
        if allocated_solar + share.solar_fraction > 1.0 + 1e-9:
            raise ConfigurationError(
                f"solar oversubscribed: {allocated_solar:.2f} allocated, "
                f"{share.solar_fraction:.2f} requested"
            )
        if allocated_battery + share.battery_fraction > 1.0 + 1e-9:
            raise ConfigurationError(
                f"battery oversubscribed: {allocated_battery:.2f} allocated, "
                f"{share.battery_fraction:.2f} requested"
            )
        if share.battery_fraction > 0.0 and not self._plant.has_battery:
            raise ConfigurationError(
                "battery share requested but the plant has no battery"
            )
        if share.solar_fraction > 0.0 and not self._plant.has_renewable:
            raise ConfigurationError(
                "solar share requested but the plant has no solar array"
                " or wind plant"
            )

    def admit_app(self, name: str, share: ShareConfig) -> VirtualEnergySystem:
        """Admit an application: create its virtual energy system.

        Usable both before a run and **mid-run** (the control plane's
        dynamic tenancy): an exogenous policy determines shares (Section
        3.3); the ecovisor only enforces that allocations do not
        oversubscribe the plant.  Publishes :class:`AppAdmittedEvent`
        and opens the app's event-journal feed.  An application
        admitted inside the ``begin_tick``..``settle`` window receives
        its first snapshot immediately (with zero virtual solar — solar
        shares engage at the next tick boundary) and is settled this
        tick.
        """
        if name in self._apps:
            raise ConfigurationError(f"application {name!r} already registered")
        self._check_share_headroom(share)
        # A re-admitted name gets a fresh account; its predecessor's
        # finalized account moves to the ledger archive (still counted
        # in cluster totals).
        self._ledger.reopen(name)
        battery: Optional[VirtualBattery] = None
        if share.battery_fraction > 0.0:
            battery = VirtualBattery(
                self._plant.battery.config, share.battery_fraction
            )
        ves = VirtualEnergySystem(name, share, battery)
        app = _RegisteredApp(
            name=name,
            ves=ves,
            solar_event_threshold_w=(
                self._config.solar_change_threshold_w * share.solar_fraction
            ),
            has_solar_share=share.solar_fraction > 0.0,
        )
        self._apps[name] = app
        self._upcall_epoch += 1
        self._allocated_solar += share.solar_fraction
        self._allocated_battery += share.battery_fraction
        self._journal.ensure_feed(name)
        if self._in_tick:
            app.state = self._build_state(app)
            app.state_stamp = self._phase_stamp
        if self._fleet is not None:
            # The newcomer gets its row (seeded from the live VES) at
            # the next tick phase's refresh.
            self._fleet.dirty = True
        self._publish(
            AppAdmittedEvent(
                time_s=self._carbon_sample_time_s,
                app_name=name,
                solar_fraction=share.solar_fraction,
                battery_fraction=share.battery_fraction,
                grid_power_w=share.grid_power_w,
            )
        )
        return ves

    def register_app(self, name: str, share: ShareConfig) -> VirtualEnergySystem:
        """Alias of :meth:`admit_app` (the pre-v1.1 registration name)."""
        return self.admit_app(name, share)

    def evict_app(self, name: str) -> AppAccount:
        """Evict an application, finalizing its account and shares.

        Stops every container the application still runs, finalizes its
        :class:`AppAccount` in the ledger (the account stays queryable
        and keeps counting toward cluster totals, but refuses further
        settlements), releases the solar/battery allocation back to the
        admission pool, and publishes :class:`AppEvictedEvent` as the
        terminal entry of the app's event feed (the feed itself remains
        readable).  Returns the finalized account.
        """
        app = self._app(name)
        stopped = self._platform.stop_app(name)
        # Release what is *committed*: a staged rebalance already moved
        # the allocation totals to the pending share at set_share time.
        staged = self._pending_shares.pop(name, None)
        share = staged if staged is not None else app.ves.share
        self._allocated_solar = max(0.0, self._allocated_solar - share.solar_fraction)
        self._allocated_battery = max(
            0.0, self._allocated_battery - share.battery_fraction
        )
        del self._apps[name]
        self._upcall_epoch += 1
        fleet = self._fleet
        if fleet is not None:
            if app.row >= 0:
                fleet.release_row(app.row)
                app.row = -1
            fleet.dirty = True
        # Cancel the tenant's signal subscriptions: broadcast signals
        # (carbon/price/tick) bypass app scoping, so stale dispatchers
        # would otherwise fire dead callbacks on the next tick.
        for bus in self._signal_buses.pop(name, []):
            bus.cancel_all()
        account = self._ledger.finalize(name)
        self._publish(
            AppEvictedEvent(
                time_s=self._carbon_sample_time_s,
                app_name=name,
                energy_wh=account.energy_wh,
                carbon_g=account.carbon_g,
                cost_usd=account.cost_usd,
                containers_stopped=len(stopped),
            )
        )
        # Retire after the terminal event is journaled, so the feed's
        # last readable entry is the eviction itself.
        self._journal.retire_feed(name)
        return account

    def set_share(self, name: str, share: ShareConfig) -> None:
        """Stage a share rebalance; it takes effect at the next tick boundary.

        Validates immediately (solar and battery fractions across all
        applications must each still sum to <= 1 after the swap) and
        commits the *allocation* immediately — so concurrent admissions
        cannot oversubscribe against the staged share — but the
        application's virtual views are swapped at the top of the next
        ``begin_tick``, where :class:`ShareChangedEvent` is published
        with the fresh snapshot already in place.
        """
        app = self._app(name)
        staged = self._pending_shares.get(name)
        current = staged if staged is not None else app.ves.share
        self._check_share_headroom(share, freed=current)
        self._allocated_solar += share.solar_fraction - current.solar_fraction
        self._allocated_battery += share.battery_fraction - current.battery_fraction
        self._pending_shares[name] = share

    def pending_share(self, name: str) -> Optional[ShareConfig]:
        """The staged (not yet effective) share for an app, if any."""
        self._app(name)
        return self._pending_shares.get(name)

    def _apply_pending_shares(self, time_s: float) -> List[Event]:
        """Apply staged rebalances at the tick boundary; returns events."""
        events: List[Event] = []
        for name, share in self._pending_shares.items():
            app = self._apps.get(name)
            if app is None:
                continue
            previous = app.ves.share
            battery = app.ves.battery
            if share.battery_fraction <= 0.0:
                battery = None
            elif battery is None:
                battery = VirtualBattery(
                    self._plant.battery.config, share.battery_fraction
                )
            elif battery.fraction != share.battery_fraction:
                battery = battery.rescaled(
                    self._plant.battery.config, share.battery_fraction
                )
            app.ves.set_share(share, battery)
            app.solar_event_threshold_w = (
                self._config.solar_change_threshold_w * share.solar_fraction
            )
            app.has_solar_share = share.solar_fraction > 0.0
            # Battery telemetry handles depend on has_battery; rebuild
            # lazily so a share that gains or drops the battery starts
            # or stops the battery series at the boundary.
            app.telemetry = None
            events.append(
                ShareChangedEvent(
                    time_s=time_s,
                    app_name=name,
                    solar_fraction=share.solar_fraction,
                    battery_fraction=share.battery_fraction,
                    grid_power_w=share.grid_power_w,
                    previous_solar_fraction=previous.solar_fraction,
                    previous_battery_fraction=previous.battery_fraction,
                    previous_grid_power_w=previous.grid_power_w,
                )
            )
        self._pending_shares.clear()
        if events and self._fleet is not None:
            # Solar fractions / thresholds / grid shares changed; the
            # dense caches re-derive at this tick's begin phase.
            self._fleet.dirty = True
        return events

    def _app(self, name: str) -> _RegisteredApp:
        try:
            return self._apps[name]
        except KeyError:
            raise UnknownApplicationError(name) from None

    def ves_for(self, name: str) -> VirtualEnergySystem:
        return self._app(name).ves

    def share_for(self, name: str) -> ShareConfig:
        """The application's currently effective share."""
        return self._app(name).ves.share

    def app_shares(self) -> Dict[str, ShareConfig]:
        """Every registered application's effective share, by name."""
        return {name: app.ves.share for name, app in sorted(self._apps.items())}

    def register_tick_callback(self, name: str, callback: TickCallback) -> None:
        """Register an application's ``tick()`` upcall (Table 1).

        Callbacks accepting two positional parameters receive
        ``(tick, state)`` where ``state`` is the tick's
        :class:`EnergyState` snapshot; single-parameter callbacks keep
        the legacy ``(tick)`` shape.
        """
        app = self._app(name)
        app.tick_callbacks = (*app.tick_callbacks, (callback, _callback_arity(callback)))
        self._upcall_epoch += 1

    @property
    def upcall_epoch(self) -> int:
        """Generation counter for the upcall registration surface.

        Changes whenever an app is admitted or evicted or a tick
        callback is registered; the vectorized upcall plane
        (:mod:`repro.core.upcalls`) keys its app grouping on it.
        """
        return self._upcall_epoch

    # ------------------------------------------------------------------
    # Snapshot access
    # ------------------------------------------------------------------
    def state_for(self, name: str) -> EnergyState:
        """The application's current per-tick snapshot.

        Before the first tick a bootstrap snapshot is built on demand
        (and not cached, so pre-run container launches and demand
        changes stay visible to the legacy live-read fallbacks).
        """
        app = self._app(name)
        if self._columnar:
            state = self._columnar_state(app)
            if state is not None:
                return state
        if app.state is None:
            return self._build_state(app, bootstrap=True)
        return app.state

    def latest_state(self, name: str) -> Optional[EnergyState]:
        """The stored tick snapshot, or None before the first tick.

        The deprecated getters use this to decide between snapshot
        delegation and the legacy live-read fallback.
        """
        app = self._app(name)
        if self._columnar:
            return self._columnar_state(app)
        return app.state

    def _battery_state(self, ves: VirtualEnergySystem) -> Optional[BatteryState]:
        battery = ves.battery
        if battery is None:
            return None
        return BatteryState(
            charge_level_wh=battery.usable_wh,
            capacity_wh=battery.usable_capacity_wh,
            soc_fraction=battery.soc_fraction,
            discharge_rate_w=battery.last_discharge_w,
            charge_rate_w=battery.last_charge_w,
            max_discharge_w=battery.max_discharge_w,
            charge_target_w=battery.charge_rate_w,
            is_full=battery.is_full,
            is_empty=battery.is_empty,
        )

    def _container_powers(self, name: str) -> Mapping[str, float]:
        # Wrapped at the source: the dict is freshly built by the
        # platform, so the snapshot can adopt the proxy without the
        # defensive copy `_freeze_mapping` makes for foreign mappings.
        return MappingProxyType(self._platform.app_container_powers(name))

    def _build_state(
        self, app: _RegisteredApp, bootstrap: bool = False
    ) -> EnergyState:
        """Build one app's snapshot (counted: once per app per tick).

        Bootstrap builds (pre-first-tick, uncached) stay out of the
        counter so the ``ticks x apps`` invariant holds regardless of
        how often ``state()`` is read before the run starts.
        """
        if not bootstrap:
            self._state_builds += 1
        account = self._ledger.account(app.name)
        return EnergyState(
            app_name=app.name,
            tick_index=self._current_tick_index,
            time_s=self._carbon_sample_time_s,
            duration_s=self._current_tick_duration_s,
            solar_power_w=app.ves.solar_power_w,
            grid_carbon_g_per_kwh=self._current_carbon,
            grid_price_usd_per_kwh=self._current_price,
            has_market=self._price_signal is not None,
            grid_power_w=app.ves.grid_power_w,
            battery=self._battery_state(app.ves),
            container_power_w=self._container_powers(app.name),
            total_energy_wh=account.energy_wh,
            total_carbon_g=account.carbon_g,
            total_cost_usd=account.cost_usd,
            settled=False,
        )

    # ------------------------------------------------------------------
    # Privileged container operations (ownership-checked)
    # ------------------------------------------------------------------
    def owned_container(self, app_name: str, container_id: str) -> Container:
        """The container, after checking ``app_name`` owns it.

        The single ownership gate used by the in-process API, the
        library layer, and the REST surface; raises
        :class:`AuthorizationError` on cross-application access.
        """
        container = self._platform.get_container(container_id)
        if container.app_name != app_name:
            raise AuthorizationError(
                f"application {app_name!r} does not own container {container_id!r}"
            )
        return container

    def _owned_container(self, app_name: str, container_id: str) -> Container:
        """Deprecated alias of :meth:`owned_container`."""
        return self.owned_container(app_name, container_id)

    def launch_container(
        self,
        app_name: str,
        cores: float,
        gpu: bool = False,
        role: str = Container.DEFAULT_ROLE,
    ) -> Container:
        self._app(app_name)  # must be registered
        return self._platform.launch_container(app_name, cores, gpu=gpu, role=role)

    def stop_container(self, app_name: str, container_id: str) -> None:
        self.owned_container(app_name, container_id)
        self._platform.stop_container(container_id)

    def scale_app_to(
        self,
        app_name: str,
        count: int,
        cores: float,
        gpu: bool = False,
        role: str = Container.DEFAULT_ROLE,
    ) -> List[Container]:
        self._app(app_name)
        return self._platform.scale_app_to(app_name, count, cores, gpu=gpu, role=role)

    def set_container_cores(
        self, app_name: str, container_id: str, cores: float
    ) -> None:
        self.owned_container(app_name, container_id)
        self._platform.set_container_cores(container_id, cores)

    def set_container_powercap(
        self, app_name: str, container_id: str, cap_w: Optional[float]
    ) -> None:
        self.owned_container(app_name, container_id)
        self._platform.set_power_cap(container_id, cap_w)

    def containers_for(
        self, app_name: str, role: Optional[str] = None
    ) -> List[Container]:
        if role is not None:
            return self._platform.running_containers_for_role(app_name, role)
        return self._platform.running_containers_for(app_name)

    # ------------------------------------------------------------------
    # Batched signal priming
    # ------------------------------------------------------------------
    def prime_signal_cache(self, start_index: int, times) -> None:
        """Precompute per-tick solar/carbon/price arrays for a run.

        Called by the engine before a batched run; ``begin_tick`` then
        reads one array entry per signal per tick instead of walking the
        trace-lookup call chains.  Ticks outside the primed window (or a
        clock that disagrees with ``times``) fall back to live sampling.
        """
        self._signal_cache = build_signal_cache(
            self._plant,
            self._carbon_service,
            self._price_signal,
            start_index,
            times,
        )

    def clear_signal_cache(self) -> None:
        """Drop any primed signals; every tick samples live again."""
        self._signal_cache = None

    # ------------------------------------------------------------------
    # Columnar fleet mode (core/fleetarrays.py)
    # ------------------------------------------------------------------
    @property
    def columnar(self) -> bool:
        """Whether tick phases run the struct-of-arrays fleet kernel."""
        return self._columnar

    @columnar.setter
    def columnar(self, enabled: bool) -> None:
        if enabled:
            if self._fleet is None:
                self._fleet = FleetArrays()
            if not self._flush_hooks_installed:
                # Installed once and left in place: with no pending
                # records the hook is one attribute check per read, so
                # toggling the mode off does not need to tear it down.
                self._db.set_flush_hook(self._flush_pending)
                self._ledger.set_flush_hook(self._flush_pending)
                self._flush_hooks_installed = True
            self._columnar = True
            self._fleet.dirty = True
            return
        if not self._columnar:
            return
        self._columnar = False
        fleet = self._fleet
        if fleet is None:
            return
        # Drain buffers and write the array-held per-tick readings back
        # into each app's VirtualEnergySystem so the object path resumes
        # from identical state.
        self._flush_pending()
        for app in self._apps.values():
            if app.row >= 0:
                app.ves.restore_tick_state(
                    float(fleet.solar_w[app.row]), float(fleet.grid_w[app.row])
                )
                app.previous_solar_w = float(fleet.prev_solar[app.row])
                fleet.release_row(app.row)
                app.row = -1
            app.snap_index = -1
            app.snap_epoch = -1
        fleet.dirty = True
        fleet.current_snap = None

    def _flush_pending(self) -> None:
        """Replay buffered tick records into the database and ledger.

        Installed as both stores' flush hook while columnar mode is (or
        has been) on; re-entrant calls (the replay itself touches both
        stores) are cut off by the ``_flushing`` guard.
        """
        fleet = self._fleet
        if fleet is None or self._flushing or not fleet.pending:
            return
        records = fleet.pending
        fleet.pending = []
        self._flushing = True
        try:
            db = self._db
            ledger = self._ledger
            handles = self._flush_series

            def series(name: str) -> Series:
                handle = handles.get(name)
                if handle is None:
                    handle = handles[name] = db.series_handle(name)
                return handle

            for r in records:
                t = r.time_s
                duration_s = r.duration_s
                for cid, p in zip(r.cont_ids, r.cont_powers):
                    series(f"container.{cid}.power_w").append(t, p)
                series("cluster.power_w").append(t, r.cluster_power)
                demand_wh = r.demand_wh.tolist()
                served = r.served.tolist()
                unmet = r.unmet.tolist()
                solar_avail = r.solar_avail.tolist()
                solar_used = r.solar_used.tolist()
                s2b = r.s2b.tolist()
                curtailed = r.curtailed.tolist()
                battery_wh = r.battery_wh.tolist()
                grid_load = r.grid_load.tolist()
                g2b = r.g2b.tolist()
                carbon_g = r.carbon_g.tolist()
                cost = r.cost.tolist()
                last_grid = r.last_grid.tolist()
                for i, name in enumerate(r.names):
                    s = r.settlements[i]
                    if s is None:
                        # Kernel row: materialize the exact settlement
                        # the object path would have built (conserving
                        # by construction, so the validate skip mirrors
                        # `ledger.record(validate=False)`).
                        s = TickSettlement(
                            app_name=name,
                            time_s=t,
                            duration_s=duration_s,
                            carbon_intensity_g_per_kwh=r.carbon,
                            demand_wh=demand_wh[i],
                            served_wh=served[i],
                            unmet_wh=unmet[i],
                            solar_available_wh=solar_avail[i],
                            solar_used_wh=solar_used[i],
                            solar_to_battery_wh=s2b[i],
                            curtailed_wh=curtailed[i],
                            battery_discharge_wh=battery_wh[i],
                            grid_load_wh=grid_load[i],
                            grid_to_battery_wh=g2b[i],
                            carbon_g=carbon_g[i],
                            price_usd_per_kwh=r.price,
                            cost_usd=cost[i],
                        )
                    ledger.account(name).add(s)
                    app = self._apps.get(name)
                    if app is not None:
                        app.ves.note_settlement(s)
                    prefix = f"app.{name}."
                    series(prefix + "power_w").append(t, r.demand_w[i])
                    series(prefix + "containers").append(t, float(r.counts[i]))
                    series(prefix + "carbon_g").append(t, s.carbon_g)
                    if r.has_market:
                        series(prefix + "cost_usd").append(t, s.cost_usd)
                    series(prefix + "grid_power_w").append(t, last_grid[i])
                    series(prefix + "solar_used_wh").append(t, s.solar_used_wh)
                    series(prefix + "unmet_wh").append(t, s.unmet_wh)
                    series(prefix + "carbon_rate_mg_s").append(
                        t, s.carbon_rate_mg_per_s
                    )
                for i, soc, level, power in r.batt_tel:
                    prefix = f"app.{r.names[i]}."
                    series(prefix + "battery_soc").append(t, soc)
                    series(prefix + "battery_level_wh").append(t, level)
                    series(prefix + "battery_power_w").append(t, power)
                for cid, cg in r.cont_carbon:
                    series(f"container.{cid}.carbon_g").append(t, cg)
        finally:
            self._flushing = False

    def _columnar_state(self, app: _RegisteredApp) -> Optional[EnergyState]:
        """The app's lazy row view for the current tick phase (cached)."""
        if app.state is not None and app.state_stamp == self._phase_stamp:
            return app.state
        snap = self._fleet.current_snap if self._fleet is not None else None
        if (
            snap is not None
            and app.snap_epoch == snap.epoch
            and app.snap_index >= 0
        ):
            state = RowEnergyState(snap, app.snap_index)
            app.state = state
            app.state_stamp = self._phase_stamp
            return state
        return app.state

    # ------------------------------------------------------------------
    # Tick phases
    # ------------------------------------------------------------------
    def begin_tick(self, tick: TickInfo) -> None:
        """Sample the environment, refresh views, build snapshots, publish."""
        time_s = tick.start_s
        self._current_tick_index = tick.index
        self._current_tick_duration_s = tick.duration_s
        self._ticks_begun += 1
        # Tick boundary: staged share rebalances take effect before any
        # sampling, so the tick's virtual solar and snapshots reflect
        # the new shares; their events publish with the other changes.
        share_events = (
            self._apply_pending_shares(time_s) if self._pending_shares else []
        )
        cache = self._signal_cache
        if cache is not None:
            offset = cache.offset_for(tick.index, time_s)
            if offset is None:
                self._trace_cache_misses += 1
            else:
                self._trace_cache_hits += 1
        else:
            offset = None
        if offset is None:
            physical_solar = self._plant.renewable_power_w(time_s)
        else:
            physical_solar = float(cache.solar_w[offset])
        if not self._config.solar_buffer_enabled or self._buffered_solar_w is None:
            # Buffer disabled (ablation), or first tick where no buffered
            # interval exists yet: expose the current sample directly.
            visible_solar = physical_solar
        else:
            # One-tick buffer (Section 3.1): applications are shown the
            # solar output measured over the previous interval, which the
            # ecovisor banked in reserved battery capacity.
            visible_solar = self._buffered_solar_w
        self._buffered_solar_w = physical_solar
        self._physical_solar_now_w = visible_solar

        # Events are collected while sampling and published only after
        # every app's snapshot is built, so a subscriber reading
        # ``state()`` inside its callback observes this tick's view.
        pending_events: List[Event] = share_events

        self._previous_carbon = self._current_carbon or None
        if offset is None:
            self._current_carbon = self._carbon_service.observe(time_s)
        else:
            self._current_carbon = float(cache.carbon[offset])
            self._carbon_service.record_observation(time_s, self._current_carbon)
        self._monitor.record_carbon_intensity(time_s, self._current_carbon)

        if (
            self._previous_carbon is not None
            and abs(self._current_carbon - self._previous_carbon)
            >= self._config.carbon_change_threshold_g_per_kwh
        ):
            pending_events.append(
                CarbonChangeEvent(
                    time_s=time_s,
                    previous_g_per_kwh=self._previous_carbon,
                    current_g_per_kwh=self._current_carbon,
                )
            )

        if self._price_signal is not None:
            self._previous_price = (
                self._current_price if self._price_sampled else None
            )
            if offset is None or cache.price is None:
                self._current_price = self._price_signal.observe(time_s)
            else:
                self._current_price = float(cache.price[offset])
                self._price_signal.record_observation(time_s, self._current_price)
            self._price_sampled = True
            self._monitor.record_grid_price(time_s, self._current_price)
            if (
                self._previous_price is not None
                and abs(self._current_price - self._previous_price)
                >= self._config.price_change_threshold_usd_per_kwh
            ):
                pending_events.append(
                    PriceChangeEvent(
                        time_s=time_s,
                        previous_usd_per_kwh=self._previous_price,
                        current_usd_per_kwh=self._current_price,
                    )
                )

        self._carbon_sample_time_s = time_s
        if self._columnar and self._fleet is not None:
            # Bulk path: one vectorized solar refresh plus a dense
            # begin-phase snapshot; per-app RowEnergyState views are
            # materialized lazily but still counted as one build per
            # app per tick (the parity-pinned invariant).
            pending_events.extend(self._fleet.begin(self, time_s, visible_solar))
            self._state_builds += len(self._apps)
            self._phase_stamp += 1
        else:
            for app in self._apps.values():
                new_solar = app.ves.update_solar(visible_solar)
                if (
                    app.has_solar_share
                    and abs(new_solar - app.previous_solar_w)
                    >= app.solar_event_threshold_w
                ):
                    pending_events.append(
                        SolarChangeEvent(
                            time_s=time_s,
                            app_name=app.name,
                            previous_w=app.previous_solar_w,
                            current_w=new_solar,
                        )
                    )
                app.previous_solar_w = new_solar

            # One snapshot build per app per tick: everything the Table 1
            # getters would return during the upcall window, captured once.
            for app in self._apps.values():
                app.state = self._build_state(app)

        # From here until settlement completes, admissions join the
        # in-flight tick (snapshot built on admission, settled below).
        self._in_tick = True
        for event in pending_events:
            self._publish(event)
        self._publish(TickEvent(time_s=time_s, tick_index=tick.index))

    def invoke_app_ticks(self, tick: TickInfo) -> None:
        """Deliver the ``tick()`` upcall to every registered callback.

        Iterates a snapshot of the app table so a callback may admit or
        evict applications mid-delivery: admissions receive their first
        upcall next tick, evicted apps are skipped.
        """
        apps = self._apps
        columnar = self._columnar
        for app in list(apps.values()):
            if app.name not in apps:
                continue
            state: Optional[EnergyState] = None
            # The tuple is an immutable snapshot: callbacks registered
            # during delivery replace it and take effect next tick.
            for callback, arity in app.tick_callbacks:
                if arity >= 2:
                    if state is None:
                        # The app handle is already resolved; only fall
                        # back to the name lookup when no columnar row
                        # view exists for it yet.
                        if columnar:
                            state = self._columnar_state(app)
                        if state is None:
                            state = self.state_for(app.name)
                    callback(tick, state)
                else:
                    callback(tick)

    def settle(self, tick: TickInfo) -> Dict[str, float]:
        """Settle every application's tick; returns served-energy fractions.

        The fraction is 1.0 when the virtual energy system fully met the
        application's demand, lower when the grid share was insufficient —
        power shortages that applications experience as degraded capacity.

        Settlement also *finalizes* each app's per-tick snapshot with the
        settled battery state, grid power, measured container power, and
        cumulative ledger totals; telemetry is recorded from that
        finalized snapshot rather than by re-polling live state.
        """
        time_s = tick.start_s
        duration_s = tick.duration_s
        if self._columnar and self._fleet is not None:
            fractions = self._fleet.settle(self, time_s, duration_s)
            self._phase_stamp += 1
            self._in_tick = False
            return fractions
        fractions: Dict[str, float] = {}
        total_grid_w = 0.0
        total_solar_used_w = 0.0
        batched = self.batched

        # One bulk power-measurement pass; on the batched path its
        # readings also provide per-app demand (one container-list walk
        # per app, recorded via the monitor) and the cluster total,
        # instead of re-deriving each from the platform per application.
        container_readings = self._monitor.sample_containers(time_s)
        if batched:
            self._monitor.sample_cluster(time_s, container_readings)
        else:
            self._monitor.sample_apps(time_s, self._apps.keys())
            self._monitor.sample_cluster(time_s)

        platform = self._platform
        monitor = self._monitor
        ledger = self._ledger
        carbon = self._current_carbon
        price = self._current_price
        # Snapshot of the app table: a battery-event subscriber may
        # admit or evict mid-settlement; evicted apps are skipped.
        for app in list(self._apps.values()):
            if app.name not in self._apps:
                continue
            containers = platform.running_containers_for(app.name)
            if batched:
                demand_w = sum(container_readings[c.id] for c in containers)
                monitor.record_app_power(
                    time_s, app.name, demand_w, len(containers)
                )
            else:
                demand_w = platform.app_power_w(app.name)
            settlement = app.ves.settle(
                demand_w,
                carbon,
                time_s,
                duration_s,
                price_usd_per_kwh=price,
            )
            # The VES validated the settlement before returning it.
            ledger.record(settlement, validate=False)
            app.state = self._finalize_state(app, containers, container_readings)
            self._record_app_telemetry(app, settlement, time_s)
            self._attribute_to_containers(
                containers,
                settlement,
                container_readings,
                # Batched: the app's measured power is already in hand.
                total_power_w=demand_w if batched else None,
            )
            self._publish_battery_events(app, time_s)
            fractions[app.name] = (
                settlement.served_wh / settlement.demand_wh
                if settlement.demand_wh > 1e-12
                else 1.0
            )
            if duration_s > 0:
                total_grid_w += settlement.grid_total_wh * 3600.0 / duration_s
                total_solar_used_w += (
                    (settlement.solar_used_wh + settlement.solar_to_battery_wh)
                    * 3600.0
                    / duration_s
                )

        if self._plant.has_grid and total_grid_w > 0:
            self._plant.grid.draw(total_grid_w, duration_s)
        if self._plant.has_renewable and total_solar_used_w > 0:
            self._plant.deliver_renewable(total_solar_used_w, duration_s, time_s)

        aggregate_battery_wh = sum(
            app.ves.battery.battery.level_wh
            for app in self._apps.values()
            if app.ves.has_battery
        )
        self._monitor.record_plant(
            time_s,
            solar_w=self._physical_solar_now_w,
            battery_level_wh=aggregate_battery_wh,
            grid_power_w=total_grid_w,
        )
        self._monitor.record_app_count(time_s, len(self._apps))
        self._in_tick = False
        return fractions

    # ------------------------------------------------------------------
    # Settlement helpers
    # ------------------------------------------------------------------
    def _finalize_state(
        self,
        app: _RegisteredApp,
        containers: List[Container],
        container_readings: Dict[str, float],
    ) -> EnergyState:
        """Finalize this tick's snapshot with the settled figures."""
        base = app.state if app.state is not None else self._build_state(app)
        account = self._ledger.account(app.name)
        return base.finalized(
            grid_power_w=app.ves.grid_power_w,
            battery=self._battery_state(app.ves),
            container_power_w=MappingProxyType(
                {c.id: container_readings.get(c.id, 0.0) for c in containers}
            ),
            total_energy_wh=account.energy_wh,
            total_carbon_g=account.carbon_g,
            total_cost_usd=account.cost_usd,
        )

    def _app_telemetry_handles(self, app: _RegisteredApp) -> Dict[str, Series]:
        """Build (once) the app's settlement series handles."""
        db = self._db
        name = app.name
        handles = {
            "carbon_g": db.series_handle(f"app.{name}.carbon_g"),
            "grid_power_w": db.series_handle(f"app.{name}.grid_power_w"),
            "solar_used_wh": db.series_handle(f"app.{name}.solar_used_wh"),
            "unmet_wh": db.series_handle(f"app.{name}.unmet_wh"),
        }
        if self._price_signal is not None:
            handles["cost_usd"] = db.series_handle(f"app.{name}.cost_usd")
        if app.ves.has_battery:
            handles["battery_soc"] = db.series_handle(f"app.{name}.battery_soc")
            handles["battery_level_wh"] = db.series_handle(
                f"app.{name}.battery_level_wh"
            )
            handles["battery_power_w"] = db.series_handle(
                f"app.{name}.battery_power_w"
            )
        return handles

    def _record_app_telemetry(
        self, app: _RegisteredApp, settlement: TickSettlement, time_s: float
    ) -> None:
        """Persist per-app telemetry from the finalized snapshot."""
        handles = app.telemetry
        if handles is None:
            handles = app.telemetry = self._app_telemetry_handles(app)
        state = app.state
        handles["carbon_g"].append(time_s, settlement.carbon_g)
        if self._price_signal is not None:
            handles["cost_usd"].append(time_s, settlement.cost_usd)
        handles["grid_power_w"].append(time_s, state.grid_power_w)
        handles["solar_used_wh"].append(time_s, settlement.solar_used_wh)
        handles["unmet_wh"].append(time_s, settlement.unmet_wh)
        self._monitor.record_app_carbon_rate(
            time_s, app.name, settlement.carbon_rate_mg_per_s
        )
        if state.battery is not None:
            battery = state.battery
            handles["battery_soc"].append(time_s, battery.soc_fraction)
            handles["battery_level_wh"].append(time_s, battery.charge_level_wh)
            # Signed battery power: positive while charging, negative
            # while discharging (the convention of Figure 9b).
            handles["battery_power_w"].append(
                time_s, battery.charge_rate_w - battery.discharge_rate_w
            )

    def _attribute_to_containers(
        self,
        containers: List[Container],
        settlement: TickSettlement,
        container_readings: Dict[str, float],
        total_power_w: Optional[float] = None,
    ) -> None:
        """Split an app's settled energy and carbon across its containers.

        Attribution is proportional to each container's share of the
        application's measured power, the same resource-usage-based
        attribution as the prototype [48, 60].  ``total_power_w`` lets
        the batched loop pass the app power it already summed from the
        same readings; None recomputes it (the fallback path).
        """
        total_power = (
            total_power_w
            if total_power_w is not None
            else sum(container_readings.get(c.id, 0.0) for c in containers)
        )
        carbon_series = self._container_carbon_series
        for container in containers:
            power = container_readings.get(container.id, 0.0)
            fraction = power / total_power if total_power > 1e-12 else 0.0
            energy = settlement.served_wh * fraction
            carbon = settlement.carbon_g * fraction
            container.record_tick(power, energy, carbon)
            series = carbon_series.get(container.id)
            if series is None:
                series = self._db.series_handle(
                    f"container.{container.id}.carbon_g"
                )
                carbon_series[container.id] = series
            series.append(settlement.time_s, carbon)

    def _publish_battery_events(self, app: _RegisteredApp, time_s: float) -> None:
        if not app.ves.has_battery:
            return
        battery = app.ves.battery
        if battery.is_full and not app.battery_was_full:
            self._publish(
                BatteryFullEvent(
                    time_s=time_s,
                    app_name=app.name,
                    charge_level_wh=battery.usable_wh,
                )
            )
        app.battery_was_full = battery.is_full
        if battery.is_empty and not app.battery_was_empty:
            self._publish(BatteryEmptyEvent(time_s=time_s, app_name=app.name))
        app.battery_was_empty = battery.is_empty

    # ------------------------------------------------------------------
    # Current environment readings (back the Table 1 getters)
    # ------------------------------------------------------------------
    @property
    def current_tick_index(self) -> int:
        """Index of the most recently begun tick (0 before the first)."""
        return self._current_tick_index

    @property
    def next_tick_index(self) -> int:
        """Index of the tick the next ``begin_tick`` will run.

        Before any tick has begun this is the current index itself (a
        fresh clock starts there) — the tick at which staged share
        rebalances and other boundary operations take effect.
        """
        if not self._ticks_begun:
            return self._current_tick_index
        return self._current_tick_index + 1

    @property
    def current_carbon_g_per_kwh(self) -> float:
        return self._current_carbon

    @property
    def current_price_usd_per_kwh(self) -> float:
        """Grid electricity price this tick (0.0 when no market attached)."""
        return self._current_price

    @property
    def physical_solar_w(self) -> float:
        """Solar power visible to applications this tick (post-buffer)."""
        return self._physical_solar_now_w
