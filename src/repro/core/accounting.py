"""Energy, carbon, and cost accounting.

The ecovisor discretizes power over each tick interval and accounts for
energy and carbon per application (paper Section 3.1).  A
:class:`TickSettlement` is the outcome of settling one application's tick:
how much energy came from virtual solar, battery, and grid; where excess
solar went; the carbon attributed for grid usage; and — when a price
signal is attached — the grid cost billed at that tick's price.
Settlements are energy-conserving by construction and re-checked at
runtime; billed cost is re-checked against grid energy x price the same
way.

The :class:`CarbonLedger` accumulates settlements per application and,
proportionally to energy, per container — the basis for the Table 2
library queries (``get_app_carbon``, ``get_container_carbon``,
``get_app_cost``, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.errors import ConfigurationError, EnergyConservationError
from repro.core.units import energy_cost_usd

_CONSERVATION_TOLERANCE_WH = 1e-6
_BILLING_TOLERANCE_USD = 1e-9


@dataclass(frozen=True, slots=True)
class TickSettlement:
    """The settled energy flows of one application over one tick.

    All energies in Wh at the application's terminals.  Conservation laws
    (checked by :meth:`validate`):

    - served demand:  ``served_wh == solar_used_wh + battery_discharge_wh
      + grid_load_wh``
    - solar:          ``solar_available_wh == solar_used_wh +
      solar_to_battery_wh + curtailed_wh``
    - demand:         ``demand_wh == served_wh + unmet_wh``
    - billing:        ``cost_usd == grid_total_wh x price`` ($/kWh)

    ``price_usd_per_kwh`` and ``cost_usd`` default to zero so settlements
    without an attached price signal remain cost-free.
    """

    app_name: str
    time_s: float
    duration_s: float
    carbon_intensity_g_per_kwh: float
    demand_wh: float
    served_wh: float
    unmet_wh: float
    solar_available_wh: float
    solar_used_wh: float
    solar_to_battery_wh: float
    curtailed_wh: float
    battery_discharge_wh: float
    grid_load_wh: float
    grid_to_battery_wh: float
    carbon_g: float
    price_usd_per_kwh: float = 0.0
    cost_usd: float = 0.0

    @property
    def grid_total_wh(self) -> float:
        """All grid energy attributed this tick (load + battery charging)."""
        return self.grid_load_wh + self.grid_to_battery_wh

    @property
    def average_power_w(self) -> float:
        """Average served power over the tick."""
        if self.duration_s <= 0:
            return 0.0
        return self.served_wh * 3600.0 / self.duration_s

    @property
    def carbon_rate_mg_per_s(self) -> float:
        """Average carbon emission rate over the tick (mg/s)."""
        if self.duration_s <= 0:
            return 0.0
        return self.carbon_g * 1000.0 / self.duration_s

    def validate(self) -> None:
        """Raise :class:`EnergyConservationError` if any flow is inconsistent.

        Runs once per application per tick on the hot path, so the happy
        path allocates nothing: plain comparisons first, diagnostic
        structures built only when a check actually fails.
        """
        tol = _CONSERVATION_TOLERANCE_WH
        checks = (
            (
                "served = solar_used + battery + grid_load",
                self.served_wh,
                self.solar_used_wh + self.battery_discharge_wh + self.grid_load_wh,
            ),
            (
                "solar_available = used + to_battery + curtailed",
                self.solar_available_wh,
                self.solar_used_wh + self.solar_to_battery_wh + self.curtailed_wh,
            ),
            ("demand = served + unmet", self.demand_wh, self.served_wh + self.unmet_wh),
        )
        for label, lhs, rhs in checks:
            if abs(lhs - rhs) > tol:
                raise EnergyConservationError(
                    f"{self.app_name} @ {self.time_s:.0f}s: {label} violated "
                    f"({lhs:.9f} != {rhs:.9f})"
                )
        billed = energy_cost_usd(self.grid_total_wh, self.price_usd_per_kwh)
        if abs(self.cost_usd - billed) > _BILLING_TOLERANCE_USD:
            raise EnergyConservationError(
                f"{self.app_name} @ {self.time_s:.0f}s: cost = grid x price "
                f"violated ({self.cost_usd:.12f} != {billed:.12f})"
            )
        if (
            self.demand_wh < -tol
            or self.served_wh < -tol
            or self.unmet_wh < -tol
            or self.solar_available_wh < -tol
            or self.solar_used_wh < -tol
            or self.solar_to_battery_wh < -tol
            or self.curtailed_wh < -tol
            or self.battery_discharge_wh < -tol
            or self.grid_load_wh < -tol
            or self.grid_to_battery_wh < -tol
            or self.carbon_g < -tol
            or self.price_usd_per_kwh < -_BILLING_TOLERANCE_USD
            or self.cost_usd < -_BILLING_TOLERANCE_USD
        ):
            negatives = [
                name
                for name, value in [
                    ("demand_wh", self.demand_wh),
                    ("served_wh", self.served_wh),
                    ("unmet_wh", self.unmet_wh),
                    ("solar_available_wh", self.solar_available_wh),
                    ("solar_used_wh", self.solar_used_wh),
                    ("solar_to_battery_wh", self.solar_to_battery_wh),
                    ("curtailed_wh", self.curtailed_wh),
                    ("battery_discharge_wh", self.battery_discharge_wh),
                    ("grid_load_wh", self.grid_load_wh),
                    ("grid_to_battery_wh", self.grid_to_battery_wh),
                    ("carbon_g", self.carbon_g),
                ]
                if value < -tol
            ]
            negatives += [
                name
                for name, value in [
                    ("price_usd_per_kwh", self.price_usd_per_kwh),
                    ("cost_usd", self.cost_usd),
                ]
                if value < -_BILLING_TOLERANCE_USD
            ]
            raise EnergyConservationError(
                f"{self.app_name} @ {self.time_s:.0f}s: negative flows {negatives}"
            )


@dataclass(slots=True)
class AppAccount:
    """Cumulative totals for one application.

    ``finalized`` is set when the application is evicted: the account
    stays in the ledger (so cluster totals keep conserving across
    churn) but refuses further settlements.
    """

    app_name: str
    energy_wh: float = 0.0
    solar_wh: float = 0.0
    battery_wh: float = 0.0
    grid_wh: float = 0.0
    carbon_g: float = 0.0
    cost_usd: float = 0.0
    curtailed_wh: float = 0.0
    unmet_wh: float = 0.0
    finalized: bool = False
    settlements: List[TickSettlement] = field(default_factory=list)

    def add(self, settlement: TickSettlement) -> None:
        if self.finalized:
            raise ConfigurationError(
                f"account {self.app_name!r} is finalized (application evicted)"
            )
        self.energy_wh += settlement.served_wh
        self.solar_wh += settlement.solar_used_wh
        self.battery_wh += settlement.battery_discharge_wh
        self.grid_wh += settlement.grid_total_wh
        self.carbon_g += settlement.carbon_g
        self.cost_usd += settlement.cost_usd
        self.curtailed_wh += settlement.curtailed_wh
        self.unmet_wh += settlement.unmet_wh
        self.settlements.append(settlement)


class CarbonLedger:
    """Per-application (and per-container) energy and carbon accounts.

    Accounts of evicted applications are *finalized* in place; if the
    same name is later re-admitted, the finalized account is moved to
    the archive (:attr:`archived_accounts`) and a fresh account opens
    under the name.  Cluster totals span live, finalized, and archived
    accounts, so conservation holds across arbitrary churn.
    """

    def __init__(self):
        self._accounts: Dict[str, AppAccount] = {}
        self._archived: List[AppAccount] = []
        # Optional pre-read flush hook: the columnar tick path buffers
        # settlements per tick and installs a callable here so they land
        # before any account is observed (same contract as the telemetry
        # database's hook).
        self._flush_hook = None

    def set_flush_hook(self, hook) -> None:
        """Install (or clear, with None) the pre-read flush callable."""
        self._flush_hook = hook

    def _flush(self) -> None:
        if self._flush_hook is not None:
            self._flush_hook()

    def account(self, app_name: str) -> AppAccount:
        """The (auto-created) account for ``app_name``."""
        self._flush()
        if app_name not in self._accounts:
            self._accounts[app_name] = AppAccount(app_name)
        return self._accounts[app_name]

    @property
    def archived_accounts(self) -> List[AppAccount]:
        """Finalized accounts displaced by a re-admission under their name."""
        self._flush()
        return list(self._archived)

    def reopen(self, app_name: str) -> None:
        """Archive a finalized account so a fresh one opens under the name.

        Called at admission: a re-admitted name must not inherit (or
        crash on) its predecessor's finalized account.  No-op when the
        name has no account or a live (non-finalized) one.
        """
        self._flush()
        existing = self._accounts.get(app_name)
        if existing is not None and existing.finalized:
            self._archived.append(self._accounts.pop(app_name))

    def record(self, settlement: TickSettlement, validate: bool = True) -> None:
        """Validate and accumulate one tick settlement.

        ``validate=False`` skips the conservation re-check for callers
        that already validated the settlement (the ecovisor records
        straight from ``VirtualEnergySystem.settle``, which validates
        before returning — re-validating doubled the hot-path cost).
        """
        if validate:
            settlement.validate()
        self.account(settlement.app_name).add(settlement)

    def finalize(self, app_name: str) -> AppAccount:
        """Freeze an application's account at eviction; returns it.

        The account remains queryable (and counted in the cluster
        totals) but any further :meth:`record` for it raises — evicted
        applications cannot accrue energy, carbon, or cost.
        """
        account = self.account(app_name)
        account.finalized = True
        return account

    def app_names(self) -> List[str]:
        self._flush()
        return sorted(self._accounts)

    def app_carbon_g(self, app_name: str) -> float:
        return self.account(app_name).carbon_g

    def app_energy_wh(self, app_name: str) -> float:
        return self.account(app_name).energy_wh

    def app_cost_usd(self, app_name: str) -> float:
        return self.account(app_name).cost_usd

    def total_carbon_g(self) -> float:
        self._flush()
        return sum(a.carbon_g for a in self._accounts.values()) + sum(
            a.carbon_g for a in self._archived
        )

    def total_energy_wh(self) -> float:
        self._flush()
        return sum(a.energy_wh for a in self._accounts.values()) + sum(
            a.energy_wh for a in self._archived
        )

    def total_cost_usd(self) -> float:
        self._flush()
        return sum(a.cost_usd for a in self._accounts.values()) + sum(
            a.cost_usd for a in self._archived
        )

    def settlements_between(
        self, app_name: str, start_s: float, end_s: float
    ) -> List[TickSettlement]:
        """Settlements whose interval starts within [start_s, end_s)."""
        return [
            s
            for s in self.account(app_name).settlements
            if start_s <= s.time_s < end_s
        ]

    def carbon_between(self, app_name: str, start_s: float, end_s: float) -> float:
        """Carbon (g) attributed to an app over an interval."""
        return sum(
            s.carbon_g for s in self.settlements_between(app_name, start_s, end_s)
        )

    def energy_between(self, app_name: str, start_s: float, end_s: float) -> float:
        """Energy (Wh) served to an app over an interval."""
        return sum(
            s.served_wh for s in self.settlements_between(app_name, start_s, end_s)
        )

    def cost_between(self, app_name: str, start_s: float, end_s: float) -> float:
        """Grid cost ($) billed to an app over an interval."""
        return sum(
            s.cost_usd for s in self.settlements_between(app_name, start_s, end_s)
        )
