"""Virtual batteries.

Each application receives a share of the physical battery's energy and
power capacity (paper Section 3.3).  A virtual battery is implemented as
a correctly scaled battery model: capacity, charge-rate limit, and
discharge-rate limit are all the application's fraction of the physical
values, so the sum of virtual limits can never exceed the physical limits
— this is precisely how the ecovisor "multiplexes control of the physical
energy system", by computing aggregate limits across applications.

On top of the scaled physical model sit the two application-controlled
knobs from Table 1: ``set_battery_charge_rate`` (grid-supplemented
charging target, "until full") and ``set_battery_max_discharge`` (cap on
discharge power).
"""

from __future__ import annotations

from repro.core.config import BatteryConfig
from repro.energy.battery import Battery


def scaled_battery_config(physical: BatteryConfig, fraction: float) -> BatteryConfig:
    """The battery config describing a ``fraction`` share of ``physical``."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"battery share fraction must be in (0, 1], got {fraction}")
    return BatteryConfig(
        capacity_wh=physical.capacity_wh * fraction,
        empty_soc_fraction=physical.empty_soc_fraction,
        max_charge_c_rate=physical.max_charge_c_rate,
        max_discharge_c_rate=physical.max_discharge_c_rate,
        charge_efficiency=physical.charge_efficiency,
        discharge_efficiency=physical.discharge_efficiency,
        initial_soc_fraction=physical.initial_soc_fraction,
    )


class VirtualBattery:
    """An application's battery share plus its software control knobs."""

    def __init__(self, physical_config: BatteryConfig, fraction: float):
        self._fraction = fraction
        self._battery = Battery(scaled_battery_config(physical_config, fraction))
        self._charge_rate_w = 0.0
        self._max_discharge_w = self._battery.max_discharge_power_w
        self._last_discharge_w = 0.0
        self._last_charge_w = 0.0

    # ------------------------------------------------------------------
    # Shares and physical limits
    # ------------------------------------------------------------------
    @property
    def fraction(self) -> float:
        """Share of the physical battery allocated to this application."""
        return self._fraction

    @property
    def battery(self) -> Battery:
        """The underlying scaled battery model."""
        return self._battery

    @property
    def capacity_wh(self) -> float:
        return self._battery.capacity_wh

    @property
    def usable_wh(self) -> float:
        """Usable stored energy (what ``get_battery_charge_level`` reports)."""
        return self._battery.usable_wh

    @property
    def usable_capacity_wh(self) -> float:
        return self._battery.usable_capacity_wh

    @property
    def soc_fraction(self) -> float:
        return self._battery.soc_fraction

    @property
    def is_full(self) -> bool:
        return self._battery.is_full

    @property
    def is_empty(self) -> bool:
        return self._battery.is_empty

    # ------------------------------------------------------------------
    # Application-controlled knobs (Table 1 setters)
    # ------------------------------------------------------------------
    @property
    def charge_rate_w(self) -> float:
        """Grid-supplemented charging target set by the application."""
        return self._charge_rate_w

    def set_charge_rate(self, watts: float) -> None:
        """``set_battery_charge_rate``: charge at ``watts`` until full.

        Solar excess always charges the battery automatically; this knob
        additionally tops charging up to ``watts`` using grid power (whose
        carbon is attributed to the application).
        """
        if watts < 0:
            raise ValueError(f"charge rate must be >= 0, got {watts}")
        self._charge_rate_w = min(watts, self._battery.max_charge_power_w)

    @property
    def max_discharge_w(self) -> float:
        """Application cap on discharge power."""
        return self._max_discharge_w

    def set_max_discharge(self, watts: float) -> None:
        """``set_battery_max_discharge``: cap discharge power at ``watts``."""
        if watts < 0:
            raise ValueError(f"max discharge must be >= 0, got {watts}")
        self._max_discharge_w = min(watts, self._battery.max_discharge_power_w)

    # ------------------------------------------------------------------
    # Settlement-facing operations
    # ------------------------------------------------------------------
    @property
    def last_discharge_w(self) -> float:
        """Discharge power during the most recent settled tick."""
        return self._last_discharge_w

    @property
    def last_charge_w(self) -> float:
        """Charge power during the most recent settled tick."""
        return self._last_charge_w

    def discharge_for_tick(self, requested_power_w: float, duration_s: float) -> float:
        """Discharge up to the app's cap; returns delivered power (W)."""
        limited = min(requested_power_w, self._max_discharge_w)
        delivered = self._battery.discharge(limited, duration_s) if limited > 0 else 0.0
        self._last_discharge_w = delivered
        return delivered

    def charge_for_tick(self, offered_power_w: float, duration_s: float) -> float:
        """Charge from an offered power source; returns accepted power (W)."""
        accepted = (
            self._battery.charge(offered_power_w, duration_s)
            if offered_power_w > 0
            else 0.0
        )
        self._last_charge_w = accepted
        return accepted

    def note_tick_charge(self, total_accepted_w: float) -> None:
        """Record the combined charge power for the tick (solar + grid)."""
        self._last_charge_w = total_accepted_w

    def rescaled(
        self, physical_config: BatteryConfig, fraction: float
    ) -> "VirtualBattery":
        """A new virtual battery holding ``fraction`` of the physical bank.

        Used by share rebalancing (:meth:`Ecovisor.set_share`): the new
        share inherits this battery's absolute stored energy (clamped to
        the new capacity — energy beyond a shrunken share returns to the
        unallocated pool) and the application's charge-rate and
        max-discharge knobs, re-clamped to the new physical limits.
        """
        rescaled = VirtualBattery(physical_config, fraction)
        rescaled._battery.set_level_wh(self._battery.level_wh)
        rescaled.set_charge_rate(self._charge_rate_w)
        if self._max_discharge_w < self._battery.max_discharge_power_w:
            # The app lowered the knob below its old physical limit:
            # keep the explicit cap.  An untouched knob (== the old
            # limit) tracks the new share's physical limit instead.
            rescaled.set_max_discharge(self._max_discharge_w)
        return rescaled

    def __repr__(self) -> str:
        return (
            f"VirtualBattery(share={self._fraction:.0%}, "
            f"usable={self.usable_wh:.1f}Wh, "
            f"charge_rate={self._charge_rate_w:.1f}W, "
            f"max_discharge={self._max_discharge_w:.1f}W)"
        )
