"""Configuration dataclasses for every subsystem.

Defaults reproduce the paper's hardware prototype (Section 4):

- ARM microservers: 1.35 W idle, 5 W at 100% CPU, 10 W at 100% CPU+GPU,
  quad-core.
- Battery bank: 1440 Wh, "empty" at 30% state-of-charge, maximum charge
  rate 0.25C (full in 4 h), maximum discharge rate 1C (empty in 1 h).
- Tick interval: one minute; carbon intensity sampled every 5 minutes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import ConfigurationError
from repro.core.units import SECONDS_PER_MINUTE


def canonical_json(value: Any) -> str:
    """Serialize a configuration-like value to canonical JSON.

    Dataclasses are expanded to dicts, dict keys are sorted, and floats use
    ``repr`` round-tripping (via the JSON encoder), so equal configurations
    always serialize to identical bytes.  Non-finite floats are permitted
    (``Infinity`` is a legitimate grid-power share).  Raises ``TypeError``
    for values that have no stable representation (arbitrary objects).
    """
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), default=_jsonify
    )


def _jsonify(value: Any) -> Any:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return dataclasses.asdict(value)
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    raise TypeError(f"not canonically serializable: {type(value).__name__}")


def config_digest(value: Any, length: int = 12) -> str:
    """Stable hex digest of a configuration-like value.

    Used for run provenance: two runs with identical scenario parameters
    produce identical digests across processes and Python versions (no
    reliance on ``hash()``, which is salted per process).
    """
    digest = hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()
    return digest[:length]


@dataclass(frozen=True)
class ServerConfig:
    """Power and capacity model of one microserver (paper Section 4)."""

    cores: int = 4
    idle_power_w: float = 1.35
    max_cpu_power_w: float = 5.0
    max_gpu_power_w: float = 10.0
    has_gpu: bool = False

    def validate(self) -> None:
        if self.cores <= 0:
            raise ConfigurationError(f"cores must be positive, got {self.cores}")
        if self.idle_power_w < 0:
            raise ConfigurationError("idle power must be >= 0")
        if self.max_cpu_power_w <= self.idle_power_w:
            raise ConfigurationError(
                "max CPU power must exceed idle power "
                f"({self.max_cpu_power_w} <= {self.idle_power_w})"
            )
        if self.has_gpu and self.max_gpu_power_w <= self.max_cpu_power_w:
            raise ConfigurationError("max GPU power must exceed max CPU power")


@dataclass(frozen=True)
class ClusterConfig:
    """A homogeneous cluster of microservers."""

    num_servers: int = 12
    server: ServerConfig = field(default_factory=ServerConfig)

    def validate(self) -> None:
        if self.num_servers <= 0:
            raise ConfigurationError("cluster needs at least one server")
        self.server.validate()

    @property
    def total_cores(self) -> int:
        return self.num_servers * self.server.cores

    @property
    def max_power_w(self) -> float:
        per_server = (
            self.server.max_gpu_power_w
            if self.server.has_gpu
            else self.server.max_cpu_power_w
        )
        return self.num_servers * per_server


@dataclass(frozen=True)
class BatteryConfig:
    """Physical battery bank (paper Section 4, 'Battery Power').

    ``capacity_wh`` is the nameplate capacity.  The charge controller
    treats ``empty_soc_fraction`` (default 30%) as empty to protect cycle
    life, so usable capacity is ``capacity_wh * (1 - empty_soc_fraction)``.
    Charge/discharge limits are expressed as C-rates: 0.25C charges in 4
    hours, 1C discharges in 1 hour.
    """

    capacity_wh: float = 1440.0
    empty_soc_fraction: float = 0.30
    max_charge_c_rate: float = 0.25
    max_discharge_c_rate: float = 1.0
    charge_efficiency: float = 0.95
    discharge_efficiency: float = 0.95
    initial_soc_fraction: float = 0.50

    def validate(self) -> None:
        if self.capacity_wh <= 0:
            raise ConfigurationError("battery capacity must be positive")
        if not 0.0 <= self.empty_soc_fraction < 1.0:
            raise ConfigurationError("empty SoC fraction must be in [0, 1)")
        if self.max_charge_c_rate <= 0 or self.max_discharge_c_rate <= 0:
            raise ConfigurationError("C-rates must be positive")
        if not 0.0 < self.charge_efficiency <= 1.0:
            raise ConfigurationError("charge efficiency must be in (0, 1]")
        if not 0.0 < self.discharge_efficiency <= 1.0:
            raise ConfigurationError("discharge efficiency must be in (0, 1]")
        if not self.empty_soc_fraction <= self.initial_soc_fraction <= 1.0:
            raise ConfigurationError(
                "initial SoC must lie between the empty floor and full"
            )

    @property
    def usable_capacity_wh(self) -> float:
        """Energy between the empty floor and full charge."""
        return self.capacity_wh * (1.0 - self.empty_soc_fraction)

    @property
    def max_charge_power_w(self) -> float:
        return self.capacity_wh * self.max_charge_c_rate

    @property
    def max_discharge_power_w(self) -> float:
        return self.capacity_wh * self.max_discharge_c_rate


@dataclass(frozen=True)
class SolarConfig:
    """Solar array emulator (paper Section 4, 'Solar Power').

    The emulator replays an irradiance trace through a PV conversion model
    sized by ``peak_power_w``.  ``scale`` uniformly scales the output,
    which is how Figures 10(c) and 11 sweep 'available renewable power'.
    """

    peak_power_w: float = 500.0
    scale: float = 1.0
    panel_efficiency_derating: float = 0.90

    def validate(self) -> None:
        if self.peak_power_w <= 0:
            raise ConfigurationError("peak power must be positive")
        if self.scale < 0:
            raise ConfigurationError("scale must be >= 0")
        if not 0.0 < self.panel_efficiency_derating <= 1.0:
            raise ConfigurationError("derating must be in (0, 1]")


@dataclass(frozen=True)
class WindConfig:
    """Wind plant sized by rated (nameplate) power.

    The plant replays a capacity-factor trace through the rated power,
    the wind analogue of :class:`SolarConfig`'s irradiance conversion.
    ``scale`` uniformly scales output so hybrid-generation sweeps can
    vary 'available renewable power' without touching the trace.
    """

    rated_power_w: float = 500.0
    scale: float = 1.0

    def validate(self) -> None:
        if self.rated_power_w <= 0:
            raise ConfigurationError("rated power must be positive")
        if self.scale < 0:
            raise ConfigurationError("scale must be >= 0")


@dataclass(frozen=True)
class GridConfig:
    """Grid connection. ``max_power_w`` of ``inf`` means unconstrained."""

    max_power_w: float = float("inf")
    net_metering: bool = False

    def validate(self) -> None:
        if self.max_power_w <= 0:
            raise ConfigurationError("grid max power must be positive")


@dataclass(frozen=True)
class CarbonServiceConfig:
    """Carbon information service (electricityMap-like, paper Section 2)."""

    region: str = "caiso"
    update_interval_s: float = 5 * SECONDS_PER_MINUTE
    seed: int = 2023

    def validate(self) -> None:
        if self.update_interval_s <= 0:
            raise ConfigurationError("update interval must be positive")


@dataclass(frozen=True)
class PriceServiceConfig:
    """Electricity-price signal service (utility/ISO price feed).

    Mirrors :class:`CarbonServiceConfig`: the ecovisor polls a price feed
    the same way it polls a carbon information service.  ``regime`` names
    a registered price regime in :mod:`repro.market.prices` (``flat``,
    ``tou``, ``realtime``).
    """

    regime: str = "tou"
    update_interval_s: float = 5 * SECONDS_PER_MINUTE
    seed: int = 2023

    def validate(self) -> None:
        if self.update_interval_s <= 0:
            raise ConfigurationError("update interval must be positive")


@dataclass(frozen=True)
class EcovisorConfig:
    """Top-level ecovisor knobs (paper Section 3).

    ``solar_buffer_fraction`` is the sliver of battery capacity the
    ecovisor always retains to buffer one tick of solar output, so that
    applications always know the solar power available to them in the next
    tick interval.
    """

    tick_interval_s: float = SECONDS_PER_MINUTE
    solar_buffer_enabled: bool = True
    solar_buffer_fraction: float = 0.01
    carbon_change_threshold_g_per_kwh: float = 10.0
    solar_change_threshold_w: float = 5.0
    price_change_threshold_usd_per_kwh: float = 0.05

    def validate(self) -> None:
        if self.tick_interval_s <= 0:
            raise ConfigurationError("tick interval must be positive")
        if not 0.0 <= self.solar_buffer_fraction < 0.5:
            raise ConfigurationError("solar buffer fraction must be in [0, 0.5)")
        if self.carbon_change_threshold_g_per_kwh < 0:
            raise ConfigurationError("carbon change threshold must be >= 0")
        if self.solar_change_threshold_w < 0:
            raise ConfigurationError("solar change threshold must be >= 0")
        if self.price_change_threshold_usd_per_kwh < 0:
            raise ConfigurationError("price change threshold must be >= 0")


@dataclass(frozen=True)
class ShareConfig:
    """An application's share of the physical energy system.

    The paper assumes an exogenous policy fixes each application's share of
    grid power, solar output, and battery energy/power capacity (Section
    3.3).  Fractions are of the respective physical resource.
    """

    solar_fraction: float = 0.0
    battery_fraction: float = 0.0
    grid_power_w: float = float("inf")

    def validate(self) -> None:
        if not 0.0 <= self.solar_fraction <= 1.0:
            raise ConfigurationError("solar fraction must be in [0, 1]")
        if not 0.0 <= self.battery_fraction <= 1.0:
            raise ConfigurationError("battery fraction must be in [0, 1]")
        if self.grid_power_w < 0:
            raise ConfigurationError("grid power share must be >= 0")
