"""The vectorized upcall plane: grouped policy and workload upcalls.

PR 6's columnar kernel (:mod:`repro.core.fleetarrays`) moved the energy
*data* plane into struct-of-arrays form; the remaining per-app cost of a
tick was the *control* plane — one Python ``on_tick`` per policy and one
``step``/``finish_tick`` pair per workload, ~10 µs/app/tick of pure
dispatch.  This module batches those upcalls the same way: registered
apps are grouped by policy class (and workloads by workload class), and
each stock class supplies an array-level kernel
(``on_tick_batch`` / ``step_batch`` / ``finish_tick_batch``) that makes
every member's decision with numpy ops and touches instances only where
something actually changes.

Byte-parity contract (pinned by ``test_columnar_parity.py``):

- **Segmented decide-then-apply.**  Apps stay in registration order.
  Consecutive batchable apps form a *segment*; any non-batchable app is
  a *fallback barrier* that runs at its exact position on the per-app
  reference path.  Within a segment every kernel first *decides* (pure
  reads: global tick signals, the app's own completion flag and worker
  count — none of which another app's scaling can change), then the
  staged scale actions are *applied* in registration order, so container
  ids, scheduler placement, and any capacity error reproduce the serial
  loop exactly.
- **Batch membership is opt-in and conservative.**  A policy app is
  batchable only when its single registered callback is the bound
  ``on_tick`` of a class whose *own body* declares
  ``batch_compatible = True`` (subclasses do not inherit the flag
  through ``__dict__``, so overriding anything drops the subclass to
  the fallback path automatically).  Workload classes opt in the same
  way and must keep their effects app-local (own containers, own
  attributes, app-unique telemetry keys) — the reordering a class group
  implies is unobservable exactly when that holds.
- **Mid-tick registration changes** (a fallback callback admitting or
  evicting an app, or registering callbacks) bump the ecovisor's
  ``upcall_epoch``; the plane detects the bump between items and
  finishes the remaining apps on the reference path, then rebuilds.

The profiled engine loop asks ``invoke_policies`` to time the fallback
barriers (``timed=True``); the returned seconds let the profiler split
the upcall phase into ``policy_batch``/``policy_fallback`` without
double counting.
"""

from __future__ import annotations

from operator import attrgetter
from time import perf_counter
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.container import Container

__all__ = ["UpcallPlane", "PolicyRows", "WorkloadRows", "TickSignals"]


class TickSignals:
    """The tick-global environment signals a policy kernel decides on.

    The same floats every ``RowEnergyState`` exposes as
    ``grid_carbon_g_per_kwh`` / ``grid_price_usd_per_kwh`` — threshold
    compares against them branch identically to the scalar path.
    """

    __slots__ = ("carbon", "price")

    def __init__(self) -> None:
        self.carbon = 0.0
        self.price = 0.0


class PolicyRows:
    """One policy class's members within a segment, in registration order.

    The view an ``on_tick_batch`` kernel works against: cached static
    attribute columns (:meth:`col` / :meth:`col_int`), per-tick worker
    counts and completion flags (:meth:`refresh`, called by the plane
    before the kernel), and the staging API (:meth:`stage_scale`) that
    records scale actions for the segment's ordered apply pass.
    """

    __slots__ = (
        "plane",
        "cls",
        "kernel",
        "policies",
        "apps",
        "names",
        "idx",
        "n",
        "counts",
        "complete",
        "_static",
        "_lists",
        "_counts_key",
        "_progress_complete",
        "_totals",
    )

    def __init__(self, plane: "UpcallPlane", cls, members) -> None:
        # members: [(entry index, policy)] in registration order.
        self.plane = plane
        self.cls = cls
        self.kernel = cls.on_tick_batch
        self.idx = [m[0] for m in members]
        self.policies = [m[1] for m in members]
        self.apps = [p._app for p in self.policies]
        self.names = [a.name for a in self.apps]
        self.n = len(members)
        self.counts = np.zeros(0, dtype=np.int64)
        self.complete = np.zeros(0, dtype=bool)
        self._static: Dict[str, np.ndarray] = {}
        self._lists: Dict[str, list] = {}
        self._counts_key = (-1, -1)
        # When every member's ``is_complete`` is the un-overridden
        # progress compare (BatchJob's ``_progress >= _total_work -
        # 1e-9``), the per-tick completion refresh vectorizes over the
        # raw attributes instead of calling the property per app.
        from repro.workloads.base import BatchJob  # local: layering, not cycle

        self._progress_complete = all(
            isinstance(a, BatchJob)
            and type(a).is_complete is BatchJob.is_complete
            for a in self.apps
        )
        self._totals: Optional[np.ndarray] = None

    def refresh(self) -> None:
        """Re-derive worker counts (topology-keyed) and completion flags."""
        platform = self.plane.platform
        key = (platform._version, Container._runstate_epoch)
        if self._counts_key != key:
            index = platform.running_role_index()
            empty = ()
            self.counts = np.fromiter(
                (len(index.get((name, "worker"), empty)) for name in self.names),
                dtype=np.int64,
                count=self.n,
            )
            self._counts_key = key
        if self._progress_complete:
            totals = self._totals
            if totals is None:
                totals = self._totals = (
                    np.fromiter(
                        map(attrgetter("_total_work"), self.apps),
                        dtype=float,
                        count=self.n,
                    )
                    - 1e-9
                )
            progress = np.fromiter(
                map(attrgetter("_progress"), self.apps),
                dtype=float,
                count=self.n,
            )
            self.complete = progress >= totals
        else:
            self.complete = np.fromiter(
                map(attrgetter("is_complete"), self.apps),
                dtype=bool,
                count=self.n,
            )

    def col(self, attr: str) -> np.ndarray:
        """Cached float column of a static per-policy attribute."""
        arr = self._static.get(attr)
        if arr is None:
            arr = self._static[attr] = np.fromiter(
                map(attrgetter(attr), self.policies),
                dtype=float,
                count=self.n,
            )
        return arr

    def col_int(self, attr: str) -> np.ndarray:
        """Cached int column of a static per-policy attribute."""
        arr = self._static.get(attr)
        if arr is None:
            arr = self._static[attr] = np.fromiter(
                map(attrgetter(attr), self.policies),
                dtype=np.int64,
                count=self.n,
            )
        return arr

    def _list(self, attr: str) -> list:
        values = self._lists.get(attr)
        if values is None:
            values = self._lists[attr] = [
                getattr(p, attr) for p in self.policies
            ]
        return values

    def stage_scale(
        self, targets: np.ndarray, gpu_attr: Optional[str] = None
    ) -> None:
        """Stage the stock threshold-policy scaling pattern.

        Replicates, per member::

            if complete:  scale_workers(0, self._cores)        # if count > 0
            elif count != target:  scale_workers(target, self._cores, gpu)

        where ``gpu`` is ``getattr(self, gpu_attr)`` (False when the
        scalar body passes no gpu argument).  Only mismatches are
        staged, so a steady-state tick applies nothing.
        """
        effective = np.where(self.complete, 0, targets)
        mismatch = np.flatnonzero(self.counts != effective)
        if not mismatch.size:
            return
        cores = self._list("_cores")
        gpus = self._list(gpu_attr) if gpu_attr is not None else None
        complete = self.complete
        policies = self.policies
        idx = self.idx
        actions = self.plane._actions
        for k in mismatch.tolist():
            if complete[k]:
                actions.append((idx[k], policies[k], 0, cores[k], False))
            else:
                actions.append(
                    (
                        idx[k],
                        policies[k],
                        int(targets[k]),
                        cores[k],
                        gpus[k] if gpus is not None else False,
                    )
                )


class _WorkerPlan:
    """One workload group's running-worker topology, keyed per generation.

    ``lists`` are the platform's memoized per-app worker lists (read
    only); ``flat``/``flat_member`` concatenate them member-major in
    launch order for the utilization gather; ``written`` tracks which
    members' demand was already pushed to exactly these containers (the
    scalar path rewrites the same value every tick and the container
    setter no-ops on equality, so skipping the rewrite is unobservable).
    """

    __slots__ = (
        "lists",
        "counts",
        "offsets",
        "flat",
        "flat_member",
        "written",
        "extras",
    )

    def __init__(self, lists: List[list]) -> None:
        self.lists = lists
        self.counts = np.fromiter(
            (len(lst) for lst in lists), dtype=np.int64, count=len(lists)
        )
        self.offsets = np.concatenate(
            ([0], np.cumsum(self.counts))
        ).astype(np.intp)
        flat: list = []
        member: List[int] = []
        for i, lst in enumerate(lists):
            flat.extend(lst)
            member.extend([i] * len(lst))
        self.flat = flat
        self.flat_member = np.asarray(member, dtype=np.intp)
        self.written = np.zeros(len(lists), dtype=bool)
        self.extras: Dict[str, np.ndarray] = {}


class WorkloadRows:
    """One workload class's members within a segment, in engine order."""

    __slots__ = (
        "cls",
        "apps",
        "names",
        "n",
        "platform",
        "updated_progress",
        "step_progress",
        "was_running",
        "warmup",
        "_static",
        "_plan",
        "_plan_key",
    )

    def __init__(self, cls, apps, platform) -> None:
        self.cls = cls
        self.apps = apps
        self.names = [a.name for a in apps]
        self.n = len(apps)
        self.platform = platform
        #: Set by ``BatchJob.finish_tick_batch``: every member's
        #: post-update progress (subclass sweeps read it, e.g. Spark's
        #: auto-checkpoint).
        self.updated_progress: Optional[np.ndarray] = None
        #: Set by ``BatchJob.step_batch`` and consumed (then cleared) by
        #: ``finish_tick_batch`` the same tick: nothing between the two
        #: phases writes ``_progress``, so the finish kernel can reuse
        #: the step kernel's gather instead of re-reading every member.
        self.step_progress: Optional[np.ndarray] = None
        #: Kernel-maintained mirrors of per-app mutable state whose only
        #: writers (for batched members) are the kernels themselves:
        #: gathered once on first use, then updated in lockstep with the
        #: object writes.  A membership change discards the rows — and
        #: with them these columns — so re-gathering covers admit/evict.
        self.was_running: Optional[np.ndarray] = None
        self.warmup: Optional[np.ndarray] = None
        self._static: Dict[str, np.ndarray] = {}
        self._plan: Optional[_WorkerPlan] = None
        self._plan_key = (-1, -1)

    def col(self, attr: str, dtype=float) -> np.ndarray:
        """Cached column of an immutable per-app attribute."""
        arr = self._static.get(attr)
        if arr is None:
            arr = self._static[attr] = np.fromiter(
                map(attrgetter(attr), self.apps), dtype=dtype, count=self.n
            )
        return arr

    def gather(self, attr: str, dtype=float) -> np.ndarray:
        """Fresh column of a mutable per-app attribute (no caching)."""
        return np.fromiter(
            map(attrgetter(attr), self.apps), dtype=dtype, count=self.n
        )

    def worker_plan(self) -> _WorkerPlan:
        """The group's worker topology, rebuilt when containers come or go."""
        platform = self.platform
        key = (platform._version, Container._runstate_epoch)
        if self._plan_key != key:
            index = platform.running_role_index()
            empty: list = []
            self._plan = _WorkerPlan(
                [index.get((name, "worker"), empty) for name in self.names]
            )
            self._plan_key = key
        return self._plan


class _Fallback:
    __slots__ = ("reg", "start")

    def __init__(self, reg, start: int) -> None:
        self.reg = reg
        self.start = start


class _Segment:
    __slots__ = ("groups", "start")

    def __init__(self, groups, start: int) -> None:
        self.groups = groups
        self.start = start


def _batchable_policy(reg):
    """The policy to batch ``reg`` under, or None for the fallback path.

    Conservative on purpose: exactly one registered callback, resolved
    through the arity-2 shim, bound to ``on_tick`` of an *attached*
    policy whose own class body opts in with ``batch_compatible = True``
    and supplies ``on_tick_batch``.
    """
    callbacks = reg.tick_callbacks
    if len(callbacks) != 1:
        return None
    callback, arity = callbacks[0]
    if arity < 2:
        return None
    policy = getattr(callback, "__self__", None)
    if policy is None:
        return None
    cls = type(policy)
    if not cls.__dict__.get("batch_compatible", False):
        return None
    if getattr(callback, "__func__", None) is not getattr(cls, "on_tick", None):
        return None
    if getattr(cls, "on_tick_batch", None) is None:
        return None
    if getattr(policy, "_app", None) is None or getattr(policy, "_api", None) is None:
        return None
    return policy


def _batchable_workload(cls) -> bool:
    return bool(
        cls.__dict__.get("batch_compatible", False)
        and getattr(cls, "step_batch", None) is not None
        and getattr(cls, "finish_tick_batch", None) is not None
    )


class UpcallPlane:
    """Grouped upcall delivery for one engine's batched tick loop."""

    def __init__(self, ecovisor) -> None:
        self._eco = ecovisor
        self.platform = ecovisor.platform
        self._signals = TickSignals()
        self._actions: list = []
        # Policy side: (epoch-keyed) registration-ordered items.
        self._p_epoch = -1
        self._p_items: list = []
        self._p_regs: list = []
        # Workload side: keyed on the engine's snapshot list itself.
        self._w_apps: Optional[list] = None
        self._w_items: list = []
        self._wb_memo: Dict[type, bool] = {}

    # -- policy upcalls -------------------------------------------------
    def invoke_policies(self, tick, timed: bool = False) -> float:
        """Deliver the tick upcalls; returns fallback seconds when timed.

        Byte-equivalent to ``Ecovisor.invoke_app_ticks`` on any fleet:
        segments run their class kernels and apply staged actions in
        registration order; fallback apps run the reference per-app
        body at their exact position.
        """
        eco = self._eco
        epoch = eco.upcall_epoch
        if self._p_epoch != epoch:
            self._rebuild_policies(epoch)
        items = self._p_items
        if not items:
            return 0.0
        fallback_s = 0.0
        signals = self._signals
        signals.carbon = eco.current_carbon_g_per_kwh
        signals.price = eco.current_price_usd_per_kwh
        actions = self._actions
        for item in items:
            if eco.upcall_epoch != epoch:
                # A callback admitted/evicted an app or registered a
                # callback mid-delivery: finish the remaining apps on
                # the reference path and rebuild next tick.
                if timed:
                    t0 = perf_counter()
                    self._scalar_tail(tick, item.start)
                    fallback_s += perf_counter() - t0
                else:
                    self._scalar_tail(tick, item.start)
                self._p_epoch = -1
                return fallback_s
            if type(item) is _Fallback:
                if timed:
                    t0 = perf_counter()
                    self._invoke_one(tick, item.reg)
                    fallback_s += perf_counter() - t0
                else:
                    self._invoke_one(tick, item.reg)
                continue
            groups = item.groups
            for rows in groups:
                rows.refresh()
                rows.kernel(tick, signals, rows)
            if actions:
                if len(groups) > 1:
                    # Interleaved classes: restore registration order.
                    actions.sort(key=_action_order)
                for _, policy, count, cores, gpu in actions:
                    policy.scale_workers(count, cores, gpu)
                actions.clear()
        return fallback_s

    def _invoke_one(self, tick, reg) -> None:
        """The reference per-app upcall body (mirrors invoke_app_ticks)."""
        eco = self._eco
        if reg.name not in eco._apps:
            return
        state = None
        for callback, arity in reg.tick_callbacks:
            if arity >= 2:
                if state is None:
                    if eco._columnar:
                        state = eco._columnar_state(reg)
                    if state is None:
                        state = eco.state_for(reg.name)
                callback(tick, state)
            else:
                callback(tick)

    def _scalar_tail(self, tick, start: int) -> None:
        for reg in self._p_regs[start:]:
            self._invoke_one(tick, reg)

    def _rebuild_policies(self, epoch: int) -> None:
        eco = self._eco
        regs = list(eco._apps.values())
        self._p_regs = regs
        items: list = []
        i = 0
        n = len(regs)
        while i < n:
            reg = regs[i]
            if not reg.tick_callbacks:
                i += 1
                continue
            policy = _batchable_policy(reg)
            if policy is None:
                items.append(_Fallback(reg, i))
                i += 1
                continue
            # A segment: the maximal run of batchable (or callback-less)
            # apps, grouped by policy class in first-appearance order.
            start = i
            groups: Dict[type, list] = {}
            while i < n:
                reg = regs[i]
                if not reg.tick_callbacks:
                    i += 1
                    continue
                policy = _batchable_policy(reg)
                if policy is None:
                    break
                groups.setdefault(type(policy), []).append((i, policy))
                i += 1
            items.append(
                _Segment(
                    [
                        PolicyRows(self, cls, members)
                        for cls, members in groups.items()
                    ],
                    start,
                )
            )
        self._p_items = items
        self._p_epoch = epoch

    # -- workload upcalls -----------------------------------------------
    def step_workloads(self, tick, duration_s: float, apps: list) -> None:
        """``app.step`` for the snapshot list, class kernels where opted in."""
        if apps != self._w_apps:
            self._rebuild_workloads(apps)
        for item in self._w_items:
            if type(item) is _Fallback:
                item.reg.step(tick, duration_s)
            else:
                for rows in item.groups:
                    rows.cls.step_batch(tick, duration_s, rows)

    def finish_workloads(
        self, tick, duration_s: float, fractions: Dict[str, float], apps: list
    ) -> None:
        """``app.finish_tick`` for the snapshot list, kernels where opted in."""
        if apps != self._w_apps:
            self._rebuild_workloads(apps)
        for item in self._w_items:
            if type(item) is _Fallback:
                app = item.reg
                app.finish_tick(
                    tick, duration_s, fractions.get(app.name, 1.0)
                )
            else:
                for rows in item.groups:
                    rows.cls.finish_tick_batch(tick, duration_s, fractions, rows)

    def _workload_batchable(self, cls) -> bool:
        flag = self._wb_memo.get(cls)
        if flag is None:
            flag = self._wb_memo[cls] = _batchable_workload(cls)
        return flag

    def _rebuild_workloads(self, apps: list) -> None:
        self._w_apps = list(apps)
        platform = self.platform
        items: list = []
        i = 0
        n = len(apps)
        while i < n:
            app = apps[i]
            if not self._workload_batchable(type(app)):
                items.append(_Fallback(app, i))
                i += 1
                continue
            start = i
            groups: Dict[type, list] = {}
            while i < n and self._workload_batchable(type(apps[i])):
                groups.setdefault(type(apps[i]), []).append(apps[i])
                i += 1
            items.append(
                _Segment(
                    [
                        WorkloadRows(cls, members, platform)
                        for cls, members in groups.items()
                    ],
                    start,
                )
            )
        self._w_items = items


def _action_order(action) -> int:
    return action[0]
