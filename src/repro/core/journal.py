"""Bounded per-application event journals (control plane v1.1).

The in-process :class:`~repro.core.signals.SignalBus` delivers signals
synchronously to callbacks living in the same process.  External
controllers — the audience of the REST control plane — cannot hold a
callback across a network boundary, so the ecovisor additionally
*journals* every published signal per application, and the REST surface
exposes the journal as a cursor-paged feed::

    GET /v1/apps/{app}/events?cursor=N
      -> {"events": [...], "next_cursor": M, "dropped": K}

A client polls with its last ``next_cursor`` and receives exactly the
signals the in-process bus delivered for that application (application-
scoped signals plus the broadcast carbon/price changes), in publish
order.  Broadcast signals are journaled eagerly into every live feed —
O(apps) deque appends per event; measured against the committed perf
gate this is ~0.2% of tick cost at 1000 tenants, cheaper than the
cursor bookkeeping a merge-at-read broadcast lane would need.  :class:`TickEvent` is deliberately *not* journaled — one entry
per app per tick would dominate the bound at fleet scale and carries no
information the feed's consumers cannot get from ``GET .../state``.

Each feed is a bounded deque (default 256 entries): old entries are
dropped, never resized, so a slow consumer sees ``dropped > 0`` and
knows its cursor lagged past the retention window rather than silently
missing events.  Feeds persist after eviction so a controller can tail
an application's terminal ``AppEvictedEvent`` — but only the most
recent ``max_retired_feeds`` evicted tenants' feeds are retained
(default 1024), so aggregate memory stays bounded under perpetual
churn instead of growing with every tenant ever admitted.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.errors import UnknownApplicationError
from repro.core.events import Event

DEFAULT_JOURNAL_CAPACITY = 256
DEFAULT_MAX_RETIRED_FEEDS = 1024


@dataclass(frozen=True)
class JournalPage:
    """One cursor-paged read of an application's event feed.

    ``events`` are the journaled events with sequence >= the requested
    cursor; ``next_cursor`` is the cursor to pass on the next poll
    (idempotent when no new events arrive); ``dropped`` counts events
    that fell out of the bounded journal before the cursor reached them.
    """

    app_name: str
    events: Tuple[Event, ...]
    next_cursor: int
    dropped: int
    #: Events this feed has evicted past its bound since creation —
    #: the feed-lifetime overflow figure (``journal_dropped_total`` in
    #: the metrics registry), as opposed to ``dropped``, which is the
    #: *caller's* cursor lag on this particular read.
    journal_dropped: int = 0


class _Feed:
    """One application's bounded (sequence, event) journal."""

    __slots__ = ("entries", "next_seq", "overflow_dropped")

    def __init__(self, capacity: int):
        self.entries: Deque[Tuple[int, Event]] = deque(maxlen=capacity)
        self.next_seq = 0
        # Events evicted from the full deque, counted at append time.
        self.overflow_dropped = 0

    def append(self, event: Event) -> None:
        self.entries.append((self.next_seq, event))
        self.next_seq += 1


class EventJournal:
    """Per-application bounded event feeds with cursor-paged reads."""

    def __init__(
        self,
        capacity: int = DEFAULT_JOURNAL_CAPACITY,
        max_retired_feeds: int = DEFAULT_MAX_RETIRED_FEEDS,
    ):
        if capacity <= 0:
            raise ValueError(f"journal capacity must be positive, got {capacity}")
        if max_retired_feeds < 0:
            raise ValueError(
                f"max_retired_feeds must be >= 0, got {max_retired_feeds}"
            )
        self._capacity = capacity
        self._max_retired = max_retired_feeds
        self._feeds: Dict[str, _Feed] = {}
        # Names of evicted tenants whose feeds are retained, oldest
        # retirement first; beyond the cap the oldest feed is dropped.
        self._retired: Deque[str] = deque()
        # Journal-lifetime overflow total across all feeds, surviving
        # retired-feed cleanup (per-feed figures die with their feed).
        self._overflow_total = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def overflow_dropped_total(self) -> int:
        """Events evicted past any feed's bound, journal-lifetime."""
        return self._overflow_total

    def overflow_dropped_for(self, app_name: str) -> int:
        """Events ``app_name``'s feed has evicted since it was created."""
        feed = self._feeds.get(app_name)
        if feed is None:
            raise UnknownApplicationError(app_name)
        return feed.overflow_dropped

    def ensure_feed(self, app_name: str) -> None:
        """Create an empty feed for a newly admitted application.

        Re-admission of a retired name resumes its existing feed (and
        takes it back out of the retirement window).
        """
        if app_name not in self._feeds:
            self._feeds[app_name] = _Feed(self._capacity)
        elif app_name in self._retired:
            self._retired.remove(app_name)

    def has_feed(self, app_name: str) -> bool:
        return app_name in self._feeds

    def retire_feed(self, app_name: str) -> None:
        """Mark an evicted tenant's feed retained-but-retired.

        The feed stays readable (the terminal ``AppEvictedEvent`` is
        its last entry); once more than ``max_retired_feeds`` tenants
        have been evicted, the longest-retired feed is dropped
        entirely, bounding aggregate memory under perpetual churn.
        """
        if app_name not in self._feeds or app_name in self._retired:
            return
        self._retired.append(app_name)
        while len(self._retired) > self._max_retired:
            self._feeds.pop(self._retired.popleft(), None)

    def record(self, app_name: str, event: Event) -> None:
        """Append one event to an application's feed (created on demand).

        An append into a full feed evicts the feed's oldest entry; the
        eviction is counted (per feed and journal-wide) instead of
        happening silently, so slow consumers and the metrics surface
        can see retention-window losses.
        """
        feed = self._feeds.get(app_name)
        if feed is None:
            feed = self._feeds[app_name] = _Feed(self._capacity)
        if len(feed.entries) == self._capacity:
            feed.overflow_dropped += 1
            self._overflow_total += 1
        feed.append(event)

    def read(
        self, app_name: str, cursor: int = 0, limit: Optional[int] = None
    ) -> JournalPage:
        """Events with sequence >= ``cursor``, oldest first.

        Raises :class:`UnknownApplicationError` for applications that
        were never admitted (evicted applications keep their feed).
        """
        feed = self._feeds.get(app_name)
        if feed is None:
            raise UnknownApplicationError(app_name)
        if cursor < 0:
            raise ValueError(f"cursor must be >= 0, got {cursor}")
        if limit is not None and limit < 0:
            raise ValueError(f"limit must be >= 0, got {limit}")
        entries = feed.entries
        oldest = entries[0][0] if entries else feed.next_seq
        dropped = max(0, min(oldest, feed.next_seq) - cursor)
        available: List[Event] = [e for seq, e in entries if seq >= cursor]
        selected = available
        if limit is not None:
            selected = available[:limit]
        if available:
            # Resume right after what was delivered (past the dropped
            # gap) — correct even when `limit` truncated to nothing.
            next_cursor = cursor + dropped + len(selected)
        else:
            next_cursor = max(cursor, feed.next_seq)
        return JournalPage(
            app_name=app_name,
            events=tuple(selected),
            next_cursor=next_cursor,
            dropped=dropped,
            journal_dropped=feed.overflow_dropped,
        )
