"""Precomputed per-tick environment signals (the batched hot path).

``Ecovisor.begin_tick`` samples three environment signals every tick —
physical renewable output (solar and, when attached, wind), grid carbon
intensity, and (when a market is attached) the electricity price.  On the live path each sample is a
Python call chain ending in a trace lookup; over a fleet-scale sweep
those chains run millions of times.  :class:`SignalTraceCache`
precomputes all three signals for an entire engine run into numpy arrays
indexed by tick, so the per-tick cost collapses to one array read per
signal.

Bit-exactness contract: a cached value must equal the live sample for
the same timestamp **exactly** (the batched-vs-unbatched parity tests
pin this).  The vectorized builders therefore replicate the scalar
lookup arithmetic operation for operation — same index truncation, same
clamping, same multiplication order — and they engage only for the
**exact** stock types (``type(x) is ...``, not ``isinstance``): a
subclass overriding a lookup method falls back to calling the scalar
sampler once per tick at build time, which is trivially exact and still
removes the lookup from the hot loop.

The cache is advisory: ``Ecovisor.begin_tick`` consults it only when the
tick's index and timestamp match (:meth:`SignalTraceCache.offset_for`),
and silently falls back to live sampling otherwise — driving the
ecovisor by hand, or past the primed horizon, behaves exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.carbon.traces import SAMPLE_INTERVAL_S, CarbonTrace
from repro.core.units import SECONDS_PER_HOUR

#: Native resolution of the solar irradiance traces (samples per hour).
_SOLAR_SAMPLES_PER_HOUR = 60


@dataclass(frozen=True, slots=True)
class SignalTraceCache:
    """Per-tick environment signals for one contiguous run of ticks.

    ``times`` holds the tick start timestamps the arrays were built for;
    ``start_index`` is the tick index of the first entry.  ``price`` is
    ``None`` when no price signal is attached.
    """

    start_index: int
    times: np.ndarray
    solar_w: np.ndarray
    carbon: np.ndarray
    price: Optional[np.ndarray]

    def __len__(self) -> int:
        return len(self.times)

    def offset_for(self, tick_index: int, start_s: float) -> Optional[int]:
        """The array offset for a tick, or None when the cache misses.

        A hit requires both the index to fall inside the primed window
        and the timestamp to match exactly — a clock driven differently
        from the priming assumptions never reads stale signals.
        """
        offset = tick_index - self.start_index
        if 0 <= offset < len(self.times) and self.times[offset] == start_s:
            return offset
        return None


def _clamped_indices(
    positions: np.ndarray, num_samples: int
) -> np.ndarray:
    """Truncate float sample positions and clamp to the trace end."""
    return np.minimum(positions.astype(np.int64), num_samples - 1)


def _renewable_array(plant, times: np.ndarray) -> np.ndarray:
    """Renewable output per tick; replicates ``plant.renewable_power_w``.

    Vectorized only for the exact stock plant/emulator/trace types — a
    subclass overriding any lookup method gets the scalar fallback, so
    its override is honored sample for sample.  The combination mirrors
    ``PhysicalEnergySystem.renewable_power_w`` term for term: solar-only
    plants never add a zero wind array, so pre-wind runs stay bit-exact.
    """
    from repro.energy.system import PhysicalEnergySystem

    if type(plant) is not PhysicalEnergySystem:
        return np.asarray([plant.renewable_power_w(float(t)) for t in times])
    solar_w = (
        _stock_solar_array(plant.solar, times)
        if plant.solar is not None
        else None
    )
    wind_w = (
        _stock_wind_array(plant.wind, times) if plant.wind is not None else None
    )
    if (plant.solar is not None and solar_w is None) or (
        plant.wind is not None and wind_w is None
    ):
        # A non-stock source type: honor its overrides sample by sample.
        return np.asarray([plant.renewable_power_w(float(t)) for t in times])
    if solar_w is None and wind_w is None:
        return np.zeros(len(times))
    if wind_w is None:
        return solar_w
    if solar_w is None:
        return wind_w
    # Same addition order as PhysicalEnergySystem.renewable_power_w.
    return solar_w + wind_w


def _stock_solar_array(solar, times: np.ndarray) -> Optional[np.ndarray]:
    """Vectorized ``SolarArrayEmulator.available_power_w``, or None."""
    from repro.energy.solar import (
        ConstantSolarTrace,
        SolarArrayEmulator,
        SolarTrace,
        TabularSolarTrace,
    )

    if type(solar) is not SolarArrayEmulator:
        return None
    trace = solar._trace
    config = solar.config
    if type(trace) is ConstantSolarTrace:
        irradiance = np.full(len(times), trace.irradiance_at(0.0))
    elif type(trace) in (SolarTrace, TabularSolarTrace):
        samples = np.asarray(trace._samples)
        positions = times / SECONDS_PER_HOUR * _SOLAR_SAMPLES_PER_HOUR
        irradiance = samples[_clamped_indices(positions, len(samples))]
    else:
        return None
    # Same multiplication order as SolarArrayEmulator.available_power_w.
    return (
        irradiance
        * config.peak_power_w
        * config.panel_efficiency_derating
        * config.scale
    )


def _stock_wind_array(wind, times: np.ndarray) -> Optional[np.ndarray]:
    """Vectorized ``WindPlant.available_power_w``, or None."""
    from repro.energy.wind import (
        WIND_SAMPLE_INTERVAL_S,
        WindCapacityTrace,
        WindPlant,
    )

    if type(wind) is not WindPlant:
        return None
    trace = wind._trace
    if type(trace) is not WindCapacityTrace:
        return None
    samples = np.asarray(trace._samples)
    positions = times / WIND_SAMPLE_INTERVAL_S
    cf = samples[_clamped_indices(positions, len(samples))]
    # Same multiplication order as WindPlant.available_power_w.
    return cf * wind.config.rated_power_w * wind.config.scale


def _carbon_array(service, times: np.ndarray) -> np.ndarray:
    """Per-tick carbon samples; replicates ``service.intensity_at``."""
    from repro.carbon.service import CarbonIntensityService

    trace = service.trace
    if type(service) is CarbonIntensityService and type(trace) is CarbonTrace:
        return _quantized_samples(
            service.config.update_interval_s, np.asarray(trace.samples), times
        )
    return np.asarray([service.intensity_at(float(t)) for t in times])


def _price_array(service, times: np.ndarray) -> np.ndarray:
    """Per-tick price samples; replicates ``service.price_at``."""
    from repro.market.prices import PriceTrace
    from repro.market.service import PriceSignal

    trace = service.trace
    if type(service) is PriceSignal and type(trace) is PriceTrace:
        return _quantized_samples(
            service.config.update_interval_s, np.asarray(trace.samples), times
        )
    return np.asarray([service.price_at(float(t)) for t in times])


def _quantized_samples(
    update_s: float, samples: np.ndarray, times: np.ndarray
) -> np.ndarray:
    """Quantize query times to the polling interval, then index the trace.

    Replicates ``intensity_at``/``price_at``: ``(t // update) * update``
    for the refresh quantization, then the trace's own 5-minute sample
    index (clamped to the trace end).
    """
    quantized = (times // update_s) * update_s
    positions = quantized / SAMPLE_INTERVAL_S
    return samples[_clamped_indices(positions, len(samples))]


def build_signal_cache(
    plant,
    carbon_service,
    price_signal,
    start_index: int,
    times: np.ndarray,
) -> SignalTraceCache:
    """Precompute one run's per-tick solar/carbon/price arrays."""
    times = np.asarray(times, dtype=float)
    return SignalTraceCache(
        start_index=start_index,
        times=times,
        solar_w=_renewable_array(plant, times),
        carbon=_carbon_array(carbon_service, times),
        price=_price_array(price_signal, times) if price_signal is not None else None,
    )
