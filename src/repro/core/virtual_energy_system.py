"""The per-application virtual energy system.

Each application's virtual energy system (VES) exposes an API functionally
equivalent to the underlying physical energy system: a virtual grid
connection, a virtual solar array (a share of the physical array's
variable output), and a virtual battery (paper Section 3.1).

The settlement order is fixed by the paper:

1. Virtual solar power is always used first to satisfy demand.
2. Remaining demand draws from the virtual battery, up to the
   application's configured maximum discharge rate.
3. Any residual demand draws grid power, whose carbon is attributed to
   the application.
4. Excess solar automatically charges the virtual battery; if the
   application configured a charge rate above the excess solar power, the
   VES supplements charging with grid power (also attributed).
5. Solar the battery cannot absorb is curtailed (the prototype does not
   net-meter).

The system is *energy-conserving*: every settled tick satisfies the
conservation identities checked in :class:`~repro.core.accounting`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.accounting import TickSettlement
from repro.core.config import ShareConfig
from repro.core.units import carbon_grams, energy_cost_usd, energy_wh, power_w
from repro.core.virtual_battery import VirtualBattery


class VirtualEnergySystem:
    """One application's virtual grid + solar + battery."""

    def __init__(
        self,
        app_name: str,
        share: ShareConfig,
        virtual_battery: Optional[VirtualBattery] = None,
    ):
        share.validate()
        self._app_name = app_name
        self._share = share
        self._battery = virtual_battery
        self._current_solar_w = 0.0
        self._last_grid_power_w = 0.0
        self._last_settlement: Optional[TickSettlement] = None

    # ------------------------------------------------------------------
    # Introspection (backs the Table 1 getters)
    # ------------------------------------------------------------------
    @property
    def app_name(self) -> str:
        return self._app_name

    @property
    def share(self) -> ShareConfig:
        return self._share

    @property
    def battery(self) -> Optional[VirtualBattery]:
        return self._battery

    @property
    def has_battery(self) -> bool:
        return self._battery is not None

    @property
    def solar_power_w(self) -> float:
        """Virtual solar output available for the current tick."""
        return self._current_solar_w

    @property
    def grid_power_w(self) -> float:
        """Grid power drawn during the most recently settled tick."""
        return self._last_grid_power_w

    @property
    def last_settlement(self) -> Optional[TickSettlement]:
        return self._last_settlement

    # ------------------------------------------------------------------
    # Per-tick operations (called by the ecovisor)
    # ------------------------------------------------------------------
    def update_solar(self, physical_solar_w: float) -> float:
        """Set the tick's virtual solar power from the physical output."""
        self._current_solar_w = physical_solar_w * self._share.solar_fraction
        return self._current_solar_w

    def restore_tick_state(self, solar_power_w: float, grid_power_w: float) -> None:
        """Reinstate per-tick readings computed outside :meth:`settle`.

        The columnar tick path keeps virtual solar and last grid draw in
        fleet-wide arrays; when an app leaves that path (mode switch,
        eviction restore) this writes the array values back so the
        object path resumes from identical state.
        """
        self._current_solar_w = float(solar_power_w)
        self._last_grid_power_w = float(grid_power_w)

    def note_settlement(self, settlement: TickSettlement) -> None:
        """Adopt a settlement computed externally (columnar kernel).

        The settlement must describe this system's tick exactly as
        :meth:`settle` would have — the columnar path guarantees that by
        replaying the same arithmetic — so only the record is updated.
        """
        self._last_settlement = settlement

    def set_share(
        self, share: ShareConfig, virtual_battery: Optional[VirtualBattery]
    ) -> None:
        """Rebalance this system to a new share (applied by the ecovisor).

        The ecovisor validates aggregate allocations and builds the
        rescaled virtual battery (or ``None`` when the new share drops
        the battery) before calling; this only swaps the views.  The
        current tick's virtual solar is left untouched — the new solar
        fraction takes effect at the next ``update_solar``, i.e. the
        next tick boundary.
        """
        share.validate()
        self._share = share
        self._battery = virtual_battery

    def settle(
        self,
        demand_w: float,
        carbon_intensity_g_per_kwh: float,
        time_s: float,
        duration_s: float,
        price_usd_per_kwh: float = 0.0,
    ) -> TickSettlement:
        """Settle one tick: route energy to demand, charge/curtail, attribute.

        ``demand_w`` is the application's measured power draw (already
        capped by container power caps).  ``price_usd_per_kwh`` is the
        grid price in force this tick (zero when no market is attached);
        grid energy — load plus grid-supplemented battery charging — is
        billed at it.  Returns the validated settlement.
        """
        if demand_w < 0:
            raise ValueError(f"demand must be >= 0, got {demand_w}")
        demand_wh = energy_wh(demand_w, duration_s)
        solar_wh = energy_wh(self._current_solar_w, duration_s)

        # 1. Solar first.
        solar_used_wh = min(demand_wh, solar_wh)
        deficit_wh = demand_wh - solar_used_wh
        excess_solar_wh = solar_wh - solar_used_wh

        # 2. Battery discharge up to the application's cap.
        battery_wh = 0.0
        if self._battery is not None and deficit_wh > 0:
            requested_w = power_w(deficit_wh, duration_s)
            delivered_w = self._battery.discharge_for_tick(requested_w, duration_s)
            battery_wh = energy_wh(delivered_w, duration_s)
            deficit_wh -= battery_wh
        elif self._battery is not None:
            self._battery.discharge_for_tick(0.0, duration_s)

        # 3. Grid covers the residual, up to the application's grid share.
        grid_capacity_wh = energy_wh(self._share.grid_power_w, duration_s)
        grid_load_wh = min(max(0.0, deficit_wh), grid_capacity_wh)
        unmet_wh = max(0.0, deficit_wh - grid_load_wh)

        # 4. Excess solar charges the battery automatically; the app's
        #    charge-rate knob tops up from the grid.
        solar_to_battery_wh = 0.0
        grid_to_battery_wh = 0.0
        if self._battery is not None:
            if excess_solar_wh > 0:
                offered_w = power_w(excess_solar_wh, duration_s)
                accepted_w = self._battery.charge_for_tick(offered_w, duration_s)
                solar_to_battery_wh = energy_wh(accepted_w, duration_s)
            target_rate_w = self._battery.charge_rate_w
            solar_charge_w = power_w(solar_to_battery_wh, duration_s)
            if target_rate_w > solar_charge_w:
                grid_headroom_wh = max(0.0, grid_capacity_wh - grid_load_wh)
                top_up_w = min(
                    target_rate_w - solar_charge_w,
                    power_w(grid_headroom_wh, duration_s) if duration_s > 0 else 0.0,
                )
                if top_up_w > 0:
                    accepted_w = self._battery.charge_for_tick(top_up_w, duration_s)
                    grid_to_battery_wh = energy_wh(accepted_w, duration_s)
            self._battery.note_tick_charge(
                power_w(solar_to_battery_wh + grid_to_battery_wh, duration_s)
                if duration_s > 0
                else 0.0
            )

        # 5. Whatever solar the battery could not absorb is curtailed.
        curtailed_wh = excess_solar_wh - solar_to_battery_wh

        served_wh = solar_used_wh + battery_wh + grid_load_wh
        grid_total_wh = grid_load_wh + grid_to_battery_wh
        carbon_g = carbon_grams(grid_total_wh, carbon_intensity_g_per_kwh)
        cost_usd = energy_cost_usd(grid_total_wh, price_usd_per_kwh)
        self._last_grid_power_w = (
            power_w(grid_total_wh, duration_s) if duration_s > 0 else 0.0
        )

        settlement = TickSettlement(
            app_name=self._app_name,
            time_s=time_s,
            duration_s=duration_s,
            carbon_intensity_g_per_kwh=carbon_intensity_g_per_kwh,
            demand_wh=demand_wh,
            served_wh=served_wh,
            unmet_wh=unmet_wh,
            solar_available_wh=solar_wh,
            solar_used_wh=solar_used_wh,
            solar_to_battery_wh=solar_to_battery_wh,
            curtailed_wh=curtailed_wh,
            battery_discharge_wh=battery_wh,
            grid_load_wh=grid_load_wh,
            grid_to_battery_wh=grid_to_battery_wh,
            carbon_g=carbon_g,
            price_usd_per_kwh=price_usd_per_kwh,
            cost_usd=cost_usd,
        )
        settlement.validate()
        self._last_settlement = settlement
        return settlement

    def __repr__(self) -> str:
        battery = "battery" if self._battery is not None else "no-battery"
        return (
            f"VirtualEnergySystem({self._app_name!r}, "
            f"solar_share={self._share.solar_fraction:.0%}, {battery})"
        )
