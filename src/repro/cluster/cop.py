"""Container orchestration platform (COP).

An LXD-like platform (paper Section 4): it creates and destroys
containers, places them with the fewest-instances scheduler, vertically
scales core allocations via cgroups, and enforces per-container power caps
by translating a watt cap into a utilization clamp through the server's
power model — the approach of Thunderbolt [48] that the prototype adopts.

The ecovisor wraps this platform (it has privileged access to these
functions); applications reach it only through the ecovisor API.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.container import Container, ContainerState
from repro.cluster.scheduler import FewestInstancesScheduler, Scheduler
from repro.cluster.server import Server
from repro.core.config import ClusterConfig
from repro.core.errors import (
    InsufficientResourcesError,
    SchedulingError,
    UnknownContainerError,
)


class ContainerOrchestrationPlatform:
    """Cluster-wide container lifecycle, placement, and capping."""

    def __init__(
        self,
        config: ClusterConfig | None = None,
        scheduler: Scheduler | None = None,
    ):
        self._config = config or ClusterConfig()
        self._config.validate()
        self._scheduler = scheduler or FewestInstancesScheduler()
        self._servers = [
            Server(f"server-{i}", self._config.server)
            for i in range(self._config.num_servers)
        ]
        self._servers_by_name: Dict[str, Server] = {
            server.name: server for server in self._servers
        }
        self._containers: Dict[str, Container] = {}
        # Per-application index of the same containers.  Each inner dict
        # preserves launch order, which equals the global insertion order
        # filtered by app — so `containers_for` keeps its historical
        # ordering while dropping from O(all containers) to O(app's).
        self._containers_by_app: Dict[str, Dict[str, Container]] = {}
        # Topology generation: bumped on launch/stop so batched readers
        # can key derived caches on (version, Container._mutation_epoch)
        # instead of rescanning the container population every tick.
        self._version = 0
        self._running_cache: Dict[str, List[Container]] = {}
        self._role_cache: Dict[tuple, List[Container]] = {}
        self._role_index: Optional[Dict[tuple, List[Container]]] = None
        self._cache_version = -1
        self._cache_epoch = -1
        self._baseline_key = (-1, -1)
        self._baseline_w = 0.0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def config(self) -> ClusterConfig:
        return self._config

    @property
    def version(self) -> int:
        """Topology generation; changes whenever containers come or go."""
        return self._version

    @property
    def servers(self) -> List[Server]:
        return list(self._servers)

    @property
    def total_cores(self) -> int:
        return self._config.total_cores

    @property
    def free_cores(self) -> float:
        return sum(s.free_cores for s in self._servers)

    def get_container(self, container_id: str) -> Container:
        try:
            return self._containers[container_id]
        except KeyError:
            raise UnknownContainerError(container_id) from None

    def has_container(self, container_id: str) -> bool:
        return container_id in self._containers

    def containers(self) -> List[Container]:
        return list(self._containers.values())

    def running_containers(self) -> List[Container]:
        return [c for c in self._containers.values() if c.is_running]

    def containers_for(self, app_name: str) -> List[Container]:
        index = self._containers_by_app.get(app_name)
        return list(index.values()) if index else []

    def _sync_generation_caches(self) -> None:
        # The memoized running/role views are keyed per (topology,
        # run-state) generation: the batched tick path asks for every
        # app's running list every tick while the running set usually
        # changes orders of magnitude less often.  Resizes (which bump
        # only the mutation epoch) leave these views untouched.
        if (
            self._cache_version != self._version
            or self._cache_epoch != Container._runstate_epoch
        ):
            self._running_cache = {}
            self._role_cache = {}
            self._role_index = None
            self._cache_version = self._version
            self._cache_epoch = Container._runstate_epoch

    def _running_for(self, app_name: str) -> List[Container]:
        # Returns the cached list itself — callers must copy before
        # exposing it for mutation.
        self._sync_generation_caches()
        cached = self._running_cache.get(app_name)
        if cached is None:
            index = self._containers_by_app.get(app_name)
            cached = [c for c in index.values() if c.is_running] if index else []
            self._running_cache[app_name] = cached
        return cached

    def running_containers_for(self, app_name: str) -> List[Container]:
        return list(self._running_for(app_name))

    def running_containers_for_role(
        self, app_name: str, role: str
    ) -> List[Container]:
        """One app's running containers of one role, memoized like
        :meth:`running_containers_for` (policies and workloads consult
        the worker pool several times per app per tick).

        Returns the cached list itself to keep the fleet hot path
        allocation-free — callers must treat it as read-only.
        """
        self._sync_generation_caches()
        key = (app_name, role)
        cached = self._role_cache.get(key)
        if cached is None:
            base = self._running_cache.get(app_name)
            if base is None:
                index = self._containers_by_app.get(app_name)
                base = (
                    [c for c in index.values() if c.is_running]
                    if index
                    else []
                )
                self._running_cache[app_name] = base
            cached = [c for c in base if c.role == role]
            self._role_cache[key] = cached
        return cached

    def running_role_index(self) -> Dict[tuple, List[Container]]:
        """Every running container grouped by ``(app_name, role)``.

        Lists are in launch order (the per-app index order filtered by
        role), so each entry equals the corresponding
        :meth:`running_containers_for_role` result; apps with no running
        containers of a role are simply absent.  Built with one walk
        over the container population and memoized per generation —
        this replaces the O(apps) per-app call storm when the batched
        upcall plane re-plans a large fleet after a topology change.
        Returns the cached dict itself; callers must treat it (and its
        lists) as read-only.
        """
        self._sync_generation_caches()
        index = self._role_index
        if index is None:
            index = {}
            running = ContainerState.RUNNING
            for container in self._containers.values():
                if container._state is running:
                    index.setdefault(
                        (container._app_name, container._role), []
                    ).append(container)
            self._role_index = index
        return index

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def launch_container(
        self,
        app_name: str,
        cores: float,
        gpu: bool = False,
        role: str = Container.DEFAULT_ROLE,
    ) -> Container:
        """Create, place, and start a container for ``app_name``."""
        if cores <= 0:
            raise SchedulingError(f"cores must be positive, got {cores}")
        container = Container(app_name, cores, gpu=gpu, role=role)
        server = self._scheduler.select(self._servers, cores)
        server.place(container)
        self._scheduler.commit(server, container.cores)
        self._containers[container.id] = container
        self._containers_by_app.setdefault(app_name, {})[container.id] = container
        self._version += 1
        return container

    def stop_container(self, container_id: str) -> None:
        """Stop and remove a container, releasing its resources."""
        container = self.get_container(container_id)
        if container.server_name is not None:
            server = self._server_by_name(container.server_name)
            server.evict(container_id)
        container.stop()
        del self._containers[container_id]
        app_index = self._containers_by_app.get(container.app_name)
        if app_index is not None:
            app_index.pop(container_id, None)
        self._version += 1

    def stop_app(self, app_name: str) -> List[str]:
        """Stop every container of an application; returns their ids."""
        ids = [c.id for c in self.containers_for(app_name)]
        for container_id in ids:
            self.stop_container(container_id)
        return ids

    # ------------------------------------------------------------------
    # Scaling
    # ------------------------------------------------------------------
    def set_container_cores(self, container_id: str, cores: float) -> None:
        """Vertically scale a container, migrating if its host is full."""
        if cores <= 0:
            raise SchedulingError(f"cores must be positive, got {cores}")
        container = self.get_container(container_id)
        server = self._server_by_name(container.server_name)
        if server.can_grow(container, cores):
            container.set_cores(cores)
            self._refresh_power_cap(container)
            return
        # Migrate: evict, resize, re-place (stateful LXD migration).
        server.evict(container_id)
        old_cores = container.cores
        container.set_cores(cores)
        try:
            target = self._scheduler.select(self._servers, cores)
        except InsufficientResourcesError:
            container.set_cores(old_cores)
            server.place(container)
            raise
        target.place(container)
        self._scheduler.commit(target, container.cores)
        self._refresh_power_cap(container)

    def _refresh_power_cap(self, container: Container) -> None:
        """Re-derive a capped container's utilization clamp after resize.

        The watt cap is enforced as a utilization clamp computed from
        the container's core count; resizing with a stale clamp would
        let measured power exceed the configured cap.
        """
        if container.power_cap_w is not None:
            self.set_power_cap(container.id, container.power_cap_w)

    def scale_app_to(
        self,
        app_name: str,
        count: int,
        cores: float,
        gpu: bool = False,
        role: str = Container.DEFAULT_ROLE,
    ) -> List[Container]:
        """Horizontally scale an app's ``role`` pool to exactly ``count``.

        Only containers of the given role are counted and affected, so a
        policy scaling workers leaves auxiliary containers (e.g. a queue
        server) untouched.  Extra containers are stopped (newest first);
        missing ones are launched.  Returns the role's running containers
        after scaling.
        """
        if count < 0:
            raise SchedulingError(f"count must be >= 0, got {count}")
        running = list(self.running_containers_for_role(app_name, role))
        while len(running) > count:
            victim = running.pop()
            self.stop_container(victim.id)
        while len(running) < count:
            running.append(
                self.launch_container(app_name, cores, gpu=gpu, role=role)
            )
        return running

    # ------------------------------------------------------------------
    # Power capping
    # ------------------------------------------------------------------
    def set_power_cap(self, container_id: str, cap_w: Optional[float]) -> None:
        """Install (or clear, with None) a per-container power cap."""
        container = self.get_container(container_id)
        server = self._server_by_name(container.server_name)
        if cap_w is None:
            container.set_power_cap(None, 1.0)
            return
        utilization = server.power_model.utilization_for_cap(cap_w, container.cores)
        container.set_power_cap(cap_w, utilization)

    # ------------------------------------------------------------------
    # Power measurement
    # ------------------------------------------------------------------
    def container_power_w(self, container_id: str) -> float:
        """Attributed power of one container at its current utilization."""
        return self._container_power(self.get_container(container_id))

    def _container_power(self, container: Container) -> float:
        """The power model applied to one already-resolved container."""
        if not container.is_running or container.server_name is None:
            return 0.0
        server = self._server_by_name(container.server_name)
        gpu_util = container.effective_utilization if container.has_gpu else 0.0
        return server.power_model.container_power_w(
            container.effective_utilization, container.cores, gpu_util
        )

    def container_powers(self) -> Dict[str, float]:
        """Attributed power of every container, in one measurement pass.

        Equivalent to calling :meth:`container_power_w` per container but
        without the per-call id lookup — the form the per-tick monitor
        sampling uses on the batched hot path.
        """
        return {
            container_id: self._container_power(container)
            for container_id, container in self._containers.items()
        }

    def app_container_powers(self, app_name: str) -> Dict[str, float]:
        """Per-container attributed power of one app's running containers."""
        index = self._containers_by_app.get(app_name)
        if not index:
            return {}
        return {
            container_id: self._container_power(container)
            for container_id, container in index.items()
            if container.is_running
        }

    def app_power_w(self, app_name: str) -> float:
        """Summed attributed power of an application's running containers."""
        return sum(
            self._container_power(c) for c in self.running_containers_for(app_name)
        )

    def cluster_power_w(self) -> float:
        """Attributed power of all containers plus unallocated idle power."""
        attributed = sum(self._container_power(c) for c in self.running_containers())
        return attributed + self.baseline_power_w()

    def baseline_power_w(self) -> float:
        """Idle power of unallocated cores (the platform's own footprint).

        Memoized on the (topology version, container mutation epoch)
        generation: occupancy only moves when containers come, go, or
        resize, while the settle path asks every tick.
        """
        key = (self._version, Container._mutation_epoch)
        if self._baseline_key != key:
            # Fused form of sum(s.baseline_idle_power_w() for s in
            # self._servers): identical per-term arithmetic and
            # summation order, without the per-server property/genexpr
            # machinery — the settle path re-sums every topology
            # generation, which at fleet scale is a hot loop.
            acc = 0.0
            for server in self._servers:
                config = server._config
                cores = config.cores
                acc += (
                    (cores - server.occupancy()[0]) / cores
                ) * config.idle_power_w
            self._baseline_w = acc
            self._baseline_key = key
        return self._baseline_w

    def _server_by_name(self, name: Optional[str]) -> Server:
        server = self._servers_by_name.get(name) if name is not None else None
        if server is None:
            raise SchedulingError(
                f"container not placed on any known server: {name!r}"
            )
        return server
