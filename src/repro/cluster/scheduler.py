"""Container placement schedulers.

The paper's prototype uses LXD's default scheduler, which "simply
allocates a container to the server with the fewest container instances"
(Section 4).  That policy is the default here; a best-fit variant is
provided for the scheduling ablation.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Sequence

import numpy as np

from repro.cluster.container import Container
from repro.cluster.server import Server
from repro.core.errors import InsufficientResourcesError


class Scheduler(abc.ABC):
    """Chooses a host server for a new container."""

    @abc.abstractmethod
    def select(self, servers: Sequence[Server], cores: float) -> Server:
        """Return the server that should host a ``cores``-wide container.

        Raises :class:`InsufficientResourcesError` when no server fits.
        """

    def commit(self, server: Server, cores: float) -> None:
        """Note that a ``cores``-wide container was placed on ``server``.

        The platform calls this right after placing the container that
        the preceding :meth:`select` chose, letting stateful schedulers
        update occupancy views incrementally instead of rescanning the
        cluster on the next placement.  Default: no-op.
        """


class FewestInstancesScheduler(Scheduler):
    """LXD's default policy: fewest running instances first.

    The selection key is ``(running instances, server name)``.  The scan
    is vectorized: per-server instance counts and allocated cores live
    in name-ordered numpy arrays rebuilt whenever a container mutation
    (stop/start/resize, tracked by ``Container._mutation_epoch``) could
    have changed occupancy, and updated in place on :meth:`commit` —
    placements do not bump the epoch, so a launch burst pays one argmin
    per placement instead of a full cluster walk.
    """

    def __init__(self):
        self._src: Optional[Sequence[Server]] = None
        self._sorted: list[Server] = []
        self._pos: Dict[str, int] = {}
        self._caps = np.zeros(0)
        self._alloc = np.zeros(0)
        self._counts = np.zeros(0)
        self._epoch = -1

    def _refresh(self, servers: Sequence[Server]) -> None:
        if self._src is not servers:
            self._sorted = sorted(servers, key=lambda s: s.name)
            self._pos = {s.name: i for i, s in enumerate(self._sorted)}
            self._caps = np.fromiter(
                (s.total_cores for s in self._sorted),
                dtype=float,
                count=len(self._sorted),
            )
            self._src = servers
        n = len(self._sorted)
        occ = [s.occupancy() for s in self._sorted]
        self._alloc = np.fromiter((o[0] for o in occ), dtype=float, count=n)
        self._counts = np.fromiter((o[1] for o in occ), dtype=float, count=n)
        self._epoch = Container._mutation_epoch

    def select(self, servers: Sequence[Server], cores: float) -> Server:
        if self._src is not servers or self._epoch != Container._mutation_epoch:
            self._refresh(servers)
        fit = self._caps - self._alloc + 1e-9 >= cores
        if not fit.any():
            raise InsufficientResourcesError(
                f"no server can host a {cores:g}-core container"
            )
        # argmin returns the first occurrence of the minimum count, and
        # the arrays are name-ordered, so ties break exactly like the
        # scalar (count, name) key.
        candidates = np.where(fit, self._counts, np.inf)
        return self._sorted[int(np.argmin(candidates))]

    def commit(self, server: Server, cores: float) -> None:
        if self._src is None or self._epoch != Container._mutation_epoch:
            return
        pos = self._pos.get(server.name)
        if pos is None:
            return
        self._alloc[pos] += cores
        self._counts[pos] += 1.0


class BestFitScheduler(Scheduler):
    """Packs containers onto the fullest server that still fits.

    Denser packing frees whole servers, which matters when a policy wants
    to power servers off; used by the scheduling ablation bench.
    """

    def select(self, servers: Sequence[Server], cores: float) -> Server:
        candidates = [s for s in servers if s.can_host(cores)]
        if not candidates:
            raise InsufficientResourcesError(
                f"no server can host a {cores:g}-core container"
            )
        return min(candidates, key=lambda s: (s.free_cores, s.name))


class WorstFitScheduler(Scheduler):
    """Spreads load: picks the emptiest server (most free cores)."""

    def select(self, servers: Sequence[Server], cores: float) -> Server:
        candidates = [s for s in servers if s.can_host(cores)]
        if not candidates:
            raise InsufficientResourcesError(
                f"no server can host a {cores:g}-core container"
            )
        return max(candidates, key=lambda s: (s.free_cores, s.name))
