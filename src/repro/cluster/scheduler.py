"""Container placement schedulers.

The paper's prototype uses LXD's default scheduler, which "simply
allocates a container to the server with the fewest container instances"
(Section 4).  That policy is the default here; a best-fit variant is
provided for the scheduling ablation.
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.cluster.server import Server
from repro.core.errors import InsufficientResourcesError


class Scheduler(abc.ABC):
    """Chooses a host server for a new container."""

    @abc.abstractmethod
    def select(self, servers: Sequence[Server], cores: float) -> Server:
        """Return the server that should host a ``cores``-wide container.

        Raises :class:`InsufficientResourcesError` when no server fits.
        """


class FewestInstancesScheduler(Scheduler):
    """LXD's default policy: fewest running instances first."""

    def select(self, servers: Sequence[Server], cores: float) -> Server:
        # Single pass: each server's occupancy feeds both the capacity
        # filter and the fewest-instances key (ties break on name, and
        # like min() the first of equal keys wins).
        best: Server | None = None
        best_key = None
        for server in servers:
            allocated, count = server.occupancy()
            if server.total_cores - allocated + 1e-9 >= cores:
                key = (count, server.name)
                if best is None or key < best_key:
                    best = server
                    best_key = key
        if best is None:
            raise InsufficientResourcesError(
                f"no server can host a {cores:g}-core container"
            )
        return best


class BestFitScheduler(Scheduler):
    """Packs containers onto the fullest server that still fits.

    Denser packing frees whole servers, which matters when a policy wants
    to power servers off; used by the scheduling ablation bench.
    """

    def select(self, servers: Sequence[Server], cores: float) -> Server:
        candidates = [s for s in servers if s.can_host(cores)]
        if not candidates:
            raise InsufficientResourcesError(
                f"no server can host a {cores:g}-core container"
            )
        return min(candidates, key=lambda s: (s.free_cores, s.name))


class WorstFitScheduler(Scheduler):
    """Spreads load: picks the emptiest server (most free cores)."""

    def select(self, servers: Sequence[Server], cores: float) -> Server:
        candidates = [s for s in servers if s.can_host(cores)]
        if not candidates:
            raise InsufficientResourcesError(
                f"no server can host a {cores:g}-core container"
            )
        return max(candidates, key=lambda s: (s.free_cores, s.name))
