"""Server model.

A server hosts containers up to its core capacity and exposes the
measured-power surface the prototype gets from IPMI/internal meters
(paper Section 2, 'Monitoring Power').
"""

from __future__ import annotations

from typing import Dict, List

from repro.cluster.container import Container
from repro.cluster.power_model import ServerPowerModel
from repro.core.config import ServerConfig
from repro.core.errors import InsufficientResourcesError


class Server:
    """One microserver hosting containers."""

    def __init__(self, name: str, config: ServerConfig | None = None):
        self._name = name
        self._config = config or ServerConfig()
        self._config.validate()
        self._power_model = ServerPowerModel(self._config)
        self._containers: Dict[str, Container] = {}
        # Occupancy memo: placements/evictions clear it locally, while
        # in-place container mutations (stop/start/resize, which don't
        # pass through this server) invalidate via the global mutation
        # epoch.  Keeps the fleet-wide scheduler scan from re-walking
        # every server's containers on every launch.
        self._occ_cache: tuple | None = None
        self._occ_epoch = -1

    @property
    def name(self) -> str:
        return self._name

    @property
    def config(self) -> ServerConfig:
        return self._config

    @property
    def power_model(self) -> ServerPowerModel:
        return self._power_model

    @property
    def total_cores(self) -> int:
        return self._config.cores

    @property
    def allocated_cores(self) -> float:
        return self.occupancy()[0]

    @property
    def free_cores(self) -> float:
        return self.total_cores - self.occupancy()[0]

    @property
    def containers(self) -> List[Container]:
        return list(self._containers.values())

    @property
    def instance_count(self) -> int:
        """Running containers hosted here (the LXD scheduler's sort key)."""
        return self.occupancy()[1]

    def can_host(self, cores: float) -> bool:
        return self.free_cores + 1e-9 >= cores

    def occupancy(self) -> tuple:
        """(allocated cores, running instances), memoized between changes.

        The scheduler consults both per candidate server on every
        launch; deriving them together halves the scan the separate
        ``allocated_cores``/``instance_count`` computations would do,
        and the memo turns the steady-state consult into two attribute
        reads.
        """
        cache = self._occ_cache
        if cache is not None and self._occ_epoch == Container._mutation_epoch:
            return cache
        allocated = 0.0
        count = 0
        for container in self._containers.values():
            if container.is_running:
                allocated += container.cores
                count += 1
        cache = (allocated, count)
        self._occ_cache = cache
        self._occ_epoch = Container._mutation_epoch
        return cache

    def place(self, container: Container) -> None:
        """Host ``container``; raises if the server lacks free cores."""
        if not self.can_host(container.cores):
            raise InsufficientResourcesError(
                f"server {self._name!r} has {self.free_cores:g} free cores, "
                f"container {container.id!r} needs {container.cores:g}"
            )
        self._containers[container.id] = container
        container.server_name = self._name
        self._occ_cache = None

    def evict(self, container_id: str) -> Container:
        """Remove a container from this server and return it."""
        container = self._containers.pop(container_id)
        container.server_name = None
        self._occ_cache = None
        return container

    def hosts(self, container_id: str) -> bool:
        return container_id in self._containers

    def can_grow(self, container: Container, new_cores: float) -> bool:
        """Whether vertically scaling ``container`` to ``new_cores`` fits."""
        others = self.allocated_cores - (container.cores if container.is_running else 0.0)
        return others + new_cores <= self.total_cores + 1e-9

    def measured_power_w(self) -> float:
        """Attributed power of all running containers on this server.

        Matches the software-defined meter's view: per-container attributed
        power, excluding idle power of unallocated cores (which belongs to
        the platform baseline, visible in Figure 5d's cluster series).
        """
        return sum(c.last_power_w for c in self._containers.values())

    def baseline_idle_power_w(self) -> float:
        """Idle power of cores not allocated to any container."""
        free_fraction = self.free_cores / self.total_cores
        return free_fraction * self._config.idle_power_w

    def __repr__(self) -> str:
        return (
            f"Server({self._name!r}, containers={self.instance_count}, "
            f"free_cores={self.free_cores:g}/{self.total_cores})"
        )
