"""Container abstraction.

Containers are the unit of resource allocation and energy management
(paper Section 3).  Our containers mirror the LXD surface the prototype
uses: a core allocation that can be vertically scaled with cgroups, a
power cap enforced as a utilization clamp, and per-container power
accounting via the software-defined power meter.
"""

from __future__ import annotations

import enum
import itertools
from typing import Optional

from repro.core.units import clamp

_container_counter = itertools.count()


def _next_container_id(app_name: str) -> str:
    return f"{app_name}-c{next(_container_counter)}"


def reset_container_id_counter() -> None:
    """Restart the process-global container-id sequence.

    Container ids embed a process-wide counter, so two otherwise
    identical environments built back-to-back in one process get
    different ids (and therefore different ``container.<id>.*``
    telemetry series names).  Byte-identical parity tests reset the
    counter between runs; production code should never call this, since
    it can reintroduce id collisions between coexisting environments
    that share an application name.
    """
    global _container_counter
    _container_counter = itertools.count()


class ContainerState(enum.Enum):
    """Lifecycle states; RUNNING containers draw power, STOPPED draw none."""

    RUNNING = "running"
    STOPPED = "stopped"


class Container:
    """One container instance placed on a server.

    The workload drives ``demand_utilization`` each tick (how busy the
    application would like to be); the effective utilization — what
    actually runs and draws power — is the demand clamped by the power
    cap's utilization limit.
    """

    DEFAULT_ROLE = "worker"

    #: Process-wide generation counter, bumped whenever an *existing*
    #: container's placement-relevant state changes (start, stop, core
    #: resize).  Batched consumers key derived caches on it so per-tick
    #: knob writes (demand utilization, power caps) stay epoch-free and
    #: cheap.  Creation deliberately does not bump it: a new container
    #: is invisible until the platform registers it, which bumps the
    #: platform's own version — keeping launches from invalidating every
    #: server's occupancy cache.
    _mutation_epoch = 0

    #: Like ``_mutation_epoch`` but bumped only on run-state flips
    #: (start/stop), not core resizes.  Caches that depend solely on
    #: *which* containers are running — role indexes, worker plans,
    #: attribution position maps — key on this so the resize-heavy
    #: steady state of a scaling fleet leaves them intact.
    _runstate_epoch = 0

    def __init__(
        self,
        app_name: str,
        cores: float,
        gpu: bool = False,
        container_id: Optional[str] = None,
        role: str = DEFAULT_ROLE,
    ):
        if cores <= 0:
            raise ValueError(f"cores must be positive, got {cores}")
        self._id = container_id or _next_container_id(app_name)
        self._app_name = app_name
        self._cores = float(cores)
        self._gpu = gpu
        self._role = role
        self._state = ContainerState.RUNNING
        self._power_cap_w: Optional[float] = None
        self._demand_utilization = 0.0
        self._cap_utilization = 1.0
        self._last_power_w = 0.0
        self._energy_wh = 0.0
        self._carbon_g = 0.0
        self.server_name: Optional[str] = None

    # ------------------------------------------------------------------
    # Identity and allocation
    # ------------------------------------------------------------------
    @property
    def id(self) -> str:
        return self._id

    @property
    def app_name(self) -> str:
        return self._app_name

    @property
    def role(self) -> str:
        """Deployment role, e.g. ``worker`` or ``coordinator``.

        Roles let policies horizontally scale an application's worker
        pool without touching long-lived auxiliary containers such as
        BLAST's central queue server.
        """
        return self._role

    @property
    def cores(self) -> float:
        return self._cores

    @property
    def has_gpu(self) -> bool:
        return self._gpu

    def set_cores(self, cores: float) -> None:
        """Vertically scale the container's core allocation (cgroups)."""
        if cores <= 0:
            raise ValueError(f"cores must be positive, got {cores}")
        self._cores = float(cores)
        Container._mutation_epoch += 1

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def state(self) -> ContainerState:
        return self._state

    @property
    def is_running(self) -> bool:
        return self._state is ContainerState.RUNNING

    def stop(self) -> None:
        self._state = ContainerState.STOPPED
        self._demand_utilization = 0.0
        self._last_power_w = 0.0
        Container._mutation_epoch += 1
        Container._runstate_epoch += 1

    def start(self) -> None:
        self._state = ContainerState.RUNNING
        Container._mutation_epoch += 1
        Container._runstate_epoch += 1

    # ------------------------------------------------------------------
    # Power capping and utilization
    # ------------------------------------------------------------------
    @property
    def power_cap_w(self) -> Optional[float]:
        """The cap set via ``set_container_powercap``; None means uncapped."""
        return self._power_cap_w

    def set_power_cap(self, cap_w: Optional[float], cap_utilization: float) -> None:
        """Install a power cap together with its utilization translation.

        The orchestration platform computes ``cap_utilization`` from the
        server's power model (cgroups enforcement); the container just
        stores and applies it.
        """
        if cap_w is not None and cap_w < 0:
            raise ValueError(f"power cap must be >= 0, got {cap_w}")
        self._power_cap_w = cap_w
        self._cap_utilization = clamp(cap_utilization, 0.0, 1.0)

    @property
    def demand_utilization(self) -> float:
        return self._demand_utilization

    def set_demand_utilization(self, utilization: float) -> None:
        """Workload-requested utilization of the container's cores."""
        if utilization != self._demand_utilization:
            self._demand_utilization = clamp(utilization, 0.0, 1.0)

    @property
    def effective_utilization(self) -> float:
        """Utilization that actually runs: demand clamped by the cap."""
        if not self.is_running:
            return 0.0
        return min(self._demand_utilization, self._cap_utilization)

    @property
    def cap_utilization(self) -> float:
        return self._cap_utilization

    # ------------------------------------------------------------------
    # Accounting (written by the power monitor each tick)
    # ------------------------------------------------------------------
    @property
    def last_power_w(self) -> float:
        """Most recent measured power draw."""
        return self._last_power_w

    @property
    def energy_wh(self) -> float:
        """Cumulative energy attributed to this container."""
        return self._energy_wh

    @property
    def carbon_g(self) -> float:
        """Cumulative carbon attributed to this container."""
        return self._carbon_g

    def record_tick(self, power_w: float, energy_wh: float, carbon_g: float) -> None:
        """Record one settled tick of power, energy, and carbon."""
        self._last_power_w = power_w
        self._energy_wh += energy_wh
        self._carbon_g += carbon_g

    def __repr__(self) -> str:
        cap = f", cap={self._power_cap_w:.2f}W" if self._power_cap_w is not None else ""
        return (
            f"Container({self._id!r}, app={self._app_name!r}, "
            f"cores={self._cores:g}, {self._state.value}{cap})"
        )
