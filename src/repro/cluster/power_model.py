"""Server and container power models.

The paper's microservers draw 1.35 W at idle, 5 W at 100% CPU, and 10 W at
100% CPU+GPU (Section 4).  Between idle and full load, power scales
linearly with utilization — the standard model for power capping by
utilization throttling (Thunderbolt [48], which the prototype follows).

A container running on a server is attributed:

- a share of the server's idle power proportional to its core allocation
  (servers are not energy-proportional; this idle share is what makes
  low-power operation inefficient in Figures 10-11), plus
- dynamic power proportional to its utilization of those cores.

Power caps are enforced the way cgroups-based capping works: the cap is
translated into a maximum utilization, and the container's effective
utilization is clamped to it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ServerConfig
from repro.core.units import clamp


@dataclass(frozen=True)
class PowerBreakdown:
    """Decomposition of a container's attributed power draw."""

    idle_w: float
    cpu_dynamic_w: float
    gpu_dynamic_w: float

    @property
    def total_w(self) -> float:
        return self.idle_w + self.cpu_dynamic_w + self.gpu_dynamic_w


class ServerPowerModel:
    """Linear utilization-to-power model for one server type."""

    def __init__(self, config: ServerConfig | None = None):
        self._config = config or ServerConfig()
        self._config.validate()

    @property
    def config(self) -> ServerConfig:
        return self._config

    @property
    def idle_power_w(self) -> float:
        return self._config.idle_power_w

    @property
    def cpu_dynamic_range_w(self) -> float:
        """Extra power from idle to 100% CPU across all cores."""
        return self._config.max_cpu_power_w - self._config.idle_power_w

    @property
    def gpu_dynamic_range_w(self) -> float:
        """Extra power from 100% CPU to 100% CPU+GPU (zero without GPU)."""
        if not self._config.has_gpu:
            return 0.0
        return self._config.max_gpu_power_w - self._config.max_cpu_power_w

    def server_power_w(self, cpu_utilization: float, gpu_utilization: float = 0.0) -> float:
        """Whole-server power at the given utilizations in [0, 1]."""
        cpu_utilization = clamp(cpu_utilization, 0.0, 1.0)
        gpu_utilization = clamp(gpu_utilization, 0.0, 1.0)
        return (
            self._config.idle_power_w
            + cpu_utilization * self.cpu_dynamic_range_w
            + gpu_utilization * self.gpu_dynamic_range_w
        )

    def container_power(
        self,
        utilization: float,
        cores: float,
        gpu_utilization: float = 0.0,
    ) -> PowerBreakdown:
        """Power attributed to a container.

        ``utilization`` is the container's CPU utilization of its own
        allocation in [0, 1]; ``cores`` its core allocation.  The idle
        share scales with the core fraction; dynamic power scales with the
        core fraction times utilization.
        """
        if cores < 0:
            raise ValueError(f"cores must be >= 0, got {cores}")
        utilization = clamp(utilization, 0.0, 1.0)
        gpu_utilization = clamp(gpu_utilization, 0.0, 1.0)
        core_fraction = cores / self._config.cores
        idle_w = core_fraction * self._config.idle_power_w
        cpu_w = core_fraction * utilization * self.cpu_dynamic_range_w
        gpu_w = core_fraction * gpu_utilization * self.gpu_dynamic_range_w
        return PowerBreakdown(idle_w=idle_w, cpu_dynamic_w=cpu_w, gpu_dynamic_w=gpu_w)

    def container_power_w(
        self, utilization: float, cores: float, gpu_utilization: float = 0.0
    ) -> float:
        """Scalar convenience wrapper over :meth:`container_power`."""
        return self.container_power(utilization, cores, gpu_utilization).total_w

    def utilization_for_cap(self, power_cap_w: float, cores: float) -> float:
        """Maximum utilization that keeps a container under ``power_cap_w``.

        This is the cgroups translation used by the ecovisor to enforce
        ``set_container_powercap`` (paper Table 1): the cap becomes a
        per-core utilization clamp.  A cap below the container's idle
        share yields zero utilization — idle power cannot be capped away
        without stopping the container.
        """
        if cores <= 0:
            return 0.0
        core_fraction = cores / self._config.cores
        idle_w = core_fraction * self._config.idle_power_w
        dynamic_range = core_fraction * self.cpu_dynamic_range_w
        if dynamic_range <= 0.0:
            return 0.0
        return clamp((power_cap_w - idle_w) / dynamic_range, 0.0, 1.0)

    def min_container_power_w(self, cores: float) -> float:
        """Idle floor of a running container with ``cores`` allocated."""
        return (cores / self._config.cores) * self._config.idle_power_w

    def max_container_power_w(self, cores: float, gpu: bool = False) -> float:
        """Power of a container at 100% utilization of its allocation."""
        core_fraction = cores / self._config.cores
        dynamic = self.cpu_dynamic_range_w
        if gpu:
            dynamic += self.gpu_dynamic_range_w
        return core_fraction * (self._config.idle_power_w + dynamic)
