"""Container orchestration substrate: servers, containers, scheduling, power."""

from repro.cluster.container import Container, ContainerState
from repro.cluster.cop import ContainerOrchestrationPlatform
from repro.cluster.power_model import PowerBreakdown, ServerPowerModel
from repro.cluster.scheduler import (
    BestFitScheduler,
    FewestInstancesScheduler,
    Scheduler,
    WorstFitScheduler,
)
from repro.cluster.server import Server

__all__ = [
    "BestFitScheduler",
    "Container",
    "ContainerOrchestrationPlatform",
    "ContainerState",
    "FewestInstancesScheduler",
    "PowerBreakdown",
    "Scheduler",
    "Server",
    "ServerPowerModel",
    "WorstFitScheduler",
]
