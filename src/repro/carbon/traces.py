"""Synthetic grid carbon-intensity traces.

The paper's Figure 1 plots electricityMap data for three regions over four
days; its experiments simulate grid carbon using CAISO (California ISO)
2020 data.  Neither dataset ships with this repo, so this module
synthesizes deterministic traces calibrated to the figure's visible
structure:

- **Ontario** — nuclear-heavy: low (~20-70 g/kWh) and flat.
- **Uruguay** — hydro-heavy: low-moderate (~40-150 g/kWh), mild diurnal
  swing, occasional thermal peaker excursions.
- **California (CAISO)** — highest mean and variance (~80-350 g/kWh) with
  a pronounced duck curve: midday solar depresses intensity, the evening
  ramp spikes it.

Traces are sampled every 5 minutes, the paper's monitoring granularity.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.core.errors import TraceError, UnknownTraceNameError
from repro.core.units import SECONDS_PER_DAY, SECONDS_PER_HOUR

SAMPLE_INTERVAL_S = 300.0  # 5 minutes
_SAMPLES_PER_DAY = int(SECONDS_PER_DAY / SAMPLE_INTERVAL_S)


@dataclass(frozen=True)
class RegionProfile:
    """Parameters shaping a region's synthetic carbon-intensity trace.

    ``base_g_per_kwh`` is the trace mean before shaping.  The two diurnal
    terms model, respectively, a broad day/night swing and the duck-curve
    dip-and-ramp created by solar penetration.  Two AR(1) noise processes
    drive variability: a slow one (weather systems, demand drift) and a
    fast one (generator dispatch churn) — the fast component produces the
    minute-scale threshold crossings visible in the paper's Figure 5(a).
    ``floor``/``ceiling`` clip to physical bounds.
    """

    name: str
    base_g_per_kwh: float
    diurnal_amplitude: float
    duck_amplitude: float
    noise_sigma: float
    noise_persistence: float
    floor: float
    ceiling: float
    fast_noise_sigma: float = 0.0
    fast_noise_persistence: float = 0.5


REGION_PROFILES: Dict[str, RegionProfile] = {
    "ontario": RegionProfile(
        name="ontario",
        base_g_per_kwh=40.0,
        diurnal_amplitude=10.0,
        duck_amplitude=0.0,
        noise_sigma=3.0,
        noise_persistence=0.97,
        floor=15.0,
        ceiling=90.0,
        fast_noise_sigma=1.5,
    ),
    "uruguay": RegionProfile(
        name="uruguay",
        base_g_per_kwh=85.0,
        diurnal_amplitude=25.0,
        duck_amplitude=0.0,
        noise_sigma=8.0,
        noise_persistence=0.96,
        floor=35.0,
        ceiling=170.0,
        fast_noise_sigma=4.0,
    ),
    "caiso": RegionProfile(
        name="caiso",
        base_g_per_kwh=215.0,
        diurnal_amplitude=25.0,
        duck_amplitude=80.0,
        noise_sigma=15.0,
        noise_persistence=0.95,
        floor=70.0,
        ceiling=350.0,
        fast_noise_sigma=35.0,
        fast_noise_persistence=0.55,
    ),
    # Coal/gas baseload with heavy wind penetration: high mean, large
    # weather-driven swings (windy days displace coal), and a visible
    # but shallower duck from the growing solar fleet.
    "germany": RegionProfile(
        name="germany",
        base_g_per_kwh=380.0,
        diurnal_amplitude=45.0,
        duck_amplitude=35.0,
        noise_sigma=28.0,
        noise_persistence=0.97,
        floor=120.0,
        ceiling=650.0,
        fast_noise_sigma=18.0,
        fast_noise_persistence=0.6,
    ),
}


class CarbonTrace:
    """A carbon-intensity time series sampled every 5 minutes."""

    def __init__(self, samples: Sequence[float], region: str = "custom"):
        arr = np.asarray(samples, dtype=float)
        if arr.ndim != 1 or len(arr) == 0:
            raise TraceError("carbon trace needs a non-empty 1-D sample array")
        if arr.min() < 0:
            raise TraceError("carbon intensity cannot be negative")
        self._samples = arr
        self._region = region

    @property
    def region(self) -> str:
        return self._region

    @property
    def samples(self) -> np.ndarray:
        view = self._samples.view()
        view.flags.writeable = False
        return view

    @property
    def duration_s(self) -> float:
        return len(self._samples) * SAMPLE_INTERVAL_S

    def intensity_at(self, time_s: float) -> float:
        """Intensity (g/kWh) at ``time_s``; clamps beyond the trace end."""
        if time_s < 0:
            raise TraceError(f"time must be >= 0, got {time_s}")
        index = min(int(time_s / SAMPLE_INTERVAL_S), len(self._samples) - 1)
        return float(self._samples[index])

    def percentile(self, q: float, start_s: float = 0.0, end_s: float | None = None) -> float:
        """The ``q``-th percentile of intensity over [start_s, end_s).

        The paper's suspend/resume and Wait&Scale policies pick their
        carbon threshold as a percentile of intensity over a lookahead
        window (30th percentile over 48 h for ML training, 33rd for
        BLAST).
        """
        window = self.window(start_s, end_s)
        return float(np.percentile(window, q))

    def window(self, start_s: float = 0.0, end_s: float | None = None) -> np.ndarray:
        """Samples covering [start_s, end_s); clamps to the trace bounds."""
        if end_s is None:
            end_s = self.duration_s
        if end_s <= start_s:
            raise TraceError(f"empty window [{start_s}, {end_s})")
        lo = max(0, int(start_s / SAMPLE_INTERVAL_S))
        hi = min(len(self._samples), max(lo + 1, int(math.ceil(end_s / SAMPLE_INTERVAL_S))))
        return self._samples[lo:hi]

    def mean(self, start_s: float = 0.0, end_s: float | None = None) -> float:
        """Mean intensity over a window."""
        return float(self.window(start_s, end_s).mean())

    def rolled(self, offset_s: float) -> "CarbonTrace":
        """A copy of this trace rotated so time zero lands at ``offset_s``.

        Used to randomize job arrival times against a fixed trace, the
        way the paper "randomly selected the job arrival each time"
        (Section 5.1.1): rolling the trace is equivalent to shifting the
        arrival.
        """
        if offset_s < 0:
            raise TraceError(f"offset must be >= 0, got {offset_s}")
        shift = int(offset_s / SAMPLE_INTERVAL_S) % len(self._samples)
        return CarbonTrace(np.roll(self._samples, -shift), region=self._region)


def duck_curve(hour_of_day: np.ndarray) -> np.ndarray:
    """Solar-driven dip centered early afternoon, evening ramp peak.

    Returns a signal in roughly [-1, +1]: negative midday (solar floods
    the grid), positive in the evening (gas peakers ramp as solar fades).
    Shared by the carbon traces here and the real-time electricity-price
    traces in :mod:`repro.market.prices` — physically, both signals are
    driven by the same net-load shape.
    """
    midday_dip = -np.exp(-((hour_of_day - 13.0) ** 2) / (2 * 2.5**2))
    evening_peak = np.exp(-((hour_of_day - 19.5) ** 2) / (2 * 1.8**2))
    morning_peak = 0.4 * np.exp(-((hour_of_day - 7.0) ** 2) / (2 * 1.5**2))
    return midday_dip + evening_peak + morning_peak


def synthesize_trace(profile: RegionProfile, days: int, seed: int = 2023) -> CarbonTrace:
    """Generate a deterministic trace for a region profile.

    The region name is mixed into the seed with CRC32 — *not* Python's
    ``hash()``, which is salted per process and would silently break
    cross-run reproducibility.
    """
    if days <= 0:
        raise TraceError(f"trace must cover at least one day, got {days}")
    rng = np.random.default_rng(seed ^ (zlib.crc32(profile.name.encode()) & 0xFFFF))
    n = days * _SAMPLES_PER_DAY
    hours = (np.arange(n) * SAMPLE_INTERVAL_S / SECONDS_PER_HOUR) % 24.0

    diurnal = profile.diurnal_amplitude * np.sin(
        2 * math.pi * (hours - 9.0) / 24.0
    )
    duck = profile.duck_amplitude * duck_curve(hours)

    noise = ar1(rng, n, profile.noise_sigma, profile.noise_persistence)
    fast_noise = ar1(
        rng, n, profile.fast_noise_sigma, profile.fast_noise_persistence
    )

    # Slow day-to-day drift (weather systems, demand shifts).
    daily_offsets = rng.normal(0.0, profile.noise_sigma * 1.5, size=days)
    drift = np.repeat(daily_offsets, _SAMPLES_PER_DAY)

    samples = np.clip(
        profile.base_g_per_kwh + diurnal + duck + noise + fast_noise + drift,
        profile.floor,
        profile.ceiling,
    )
    return CarbonTrace(samples, region=profile.name)


def ar1(rng: np.random.Generator, n: int, sigma: float, persistence: float) -> np.ndarray:
    """A zero-mean AR(1) sample path of length ``n``."""
    if sigma <= 0.0:
        return np.zeros(n)
    noise = np.empty(n)
    state = 0.0
    innovations = rng.normal(0.0, sigma, size=n)
    for i in range(n):
        state = persistence * state + innovations[i]
        noise[i] = state
    return noise


def make_region_trace(region: str, days: int = 4, seed: int = 2023) -> CarbonTrace:
    """Build the named region's trace (``ontario``/``uruguay``/``caiso``/
    ``germany``).

    Raises :class:`UnknownTraceNameError` (a ``TraceError`` *and* a
    ``ValueError``) listing the valid regions on an unknown name.
    """
    key = region.lower()
    if key not in REGION_PROFILES:
        raise UnknownTraceNameError("region", region, REGION_PROFILES)
    return synthesize_trace(REGION_PROFILES[key], days=days, seed=seed)


def constant_trace(intensity_g_per_kwh: float, days: int = 1) -> CarbonTrace:
    """A flat trace, convenient for tests and calibration."""
    if intensity_g_per_kwh < 0:
        raise TraceError("carbon intensity cannot be negative")
    n = days * _SAMPLES_PER_DAY
    return CarbonTrace(np.full(n, float(intensity_g_per_kwh)), region="constant")
