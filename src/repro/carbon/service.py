"""Carbon information service.

Third-party services such as electricityMap and WattTime provide
real-time, location-specific estimates of grid carbon-intensity; the
paper's ecovisor polls them every five minutes (Section 2, 'Monitoring
Carbon').  This class reproduces that interface over synthetic traces:
queries within one update interval return the same cached value, exactly
like polling a rate-limited external API, and a history buffer supports
the percentile-threshold computations the Section 5 policies use.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.carbon.traces import CarbonTrace, make_region_trace
from repro.core.config import CarbonServiceConfig
from repro.core.errors import TraceError


class CarbonIntensityService:
    """electricityMap-style carbon-intensity queries over a trace."""

    def __init__(
        self,
        config: CarbonServiceConfig | None = None,
        trace: CarbonTrace | None = None,
        days: int = 4,
    ):
        self._config = config or CarbonServiceConfig()
        self._config.validate()
        if trace is None:
            trace = make_region_trace(
                self._config.region, days=days, seed=self._config.seed
            )
        self._trace = trace
        self._history: List[Tuple[float, float]] = []

    @property
    def config(self) -> CarbonServiceConfig:
        return self._config

    @property
    def trace(self) -> CarbonTrace:
        return self._trace

    @property
    def region(self) -> str:
        return self._trace.region

    def intensity_at(self, time_s: float) -> float:
        """Carbon intensity (g/kWh) at ``time_s``, quantized to updates.

        The service refreshes every ``update_interval_s`` seconds; queries
        between refreshes observe the value of the most recent refresh,
        like a real polled API.
        """
        if time_s < 0:
            raise TraceError(f"time must be >= 0, got {time_s}")
        quantized = (time_s // self._config.update_interval_s) * (
            self._config.update_interval_s
        )
        return self._trace.intensity_at(quantized)

    def observe(self, time_s: float) -> float:
        """Sample the service and append to the history buffer."""
        value = self.intensity_at(time_s)
        self.record_observation(time_s, value)
        return value

    def record_observation(self, time_s: float, value: float) -> None:
        """Append one already-sampled observation to the history buffer.

        The batched tick path precomputes intensities into a per-run
        array (:mod:`repro.core.tracecache`) and feeds them back through
        here, so history-based queries (``observed_percentile``) see
        exactly what live :meth:`observe` calls would have recorded.
        """
        if not self._history or self._history[-1][0] < time_s:
            self._history.append((time_s, value))

    def history(self) -> List[Tuple[float, float]]:
        """All (time_s, intensity) observations recorded so far."""
        return list(self._history)

    def threshold_percentile(
        self, q: float, window_start_s: float, window_end_s: float
    ) -> float:
        """Percentile of trace intensity over a window.

        Section 5.1 sets suspend/resume thresholds from trace percentiles
        (30th over 48 h for ML training; 33rd over the trace for BLAST).
        Real deployments would use a forecast; the paper (and we) use the
        trace itself, which is equivalent to a perfect forecast and is the
        stated methodology.
        """
        return self._trace.percentile(q, window_start_s, window_end_s)

    def mean_intensity(self, start_s: float = 0.0, end_s: float | None = None) -> float:
        """Mean trace intensity over a window (for reporting)."""
        return self._trace.mean(start_s, end_s)

    def observed_percentile(self, q: float) -> float:
        """Percentile over *observed* history only (no lookahead)."""
        if not self._history:
            raise TraceError("no observations recorded yet")
        values = np.asarray([value for _, value in self._history])
        return float(np.percentile(values, q))
