"""Carbon-intensity forecasting.

The paper's policies pick thresholds from a percentile of carbon
intensity over a lookahead window (Section 5.1) — implicitly assuming a
forecast.  Real deployments cannot read the future trace; carbon
information services instead publish short-term forecasts built from
history.  This module provides the forecasters a deployed policy would
use, so experiments can quantify the cost of imperfect foresight:

- :class:`PersistenceForecaster` — tomorrow looks like right now; the
  standard naive baseline.
- :class:`DiurnalProfileForecaster` — tomorrow looks like the average of
  the last few days at the same time of day; captures the duck curve.
- :class:`OracleForecaster` — reads the trace directly; the paper's
  (and our benchmarks') methodology, an upper bound.

All forecasters share one interface: ``predict(now_s, horizon_s)``
returns the predicted intensity sequence at the service's 5-minute
resolution, and ``percentile(now_s, window_s, q)`` the threshold a
policy would derive from it.
"""

from __future__ import annotations

import abc
import math
from collections import defaultdict
from typing import Dict, List

import numpy as np

from repro.carbon.service import CarbonIntensityService
from repro.carbon.traces import SAMPLE_INTERVAL_S
from repro.core.errors import TraceError
from repro.core.units import SECONDS_PER_DAY


class CarbonForecaster(abc.ABC):
    """Predicts future carbon intensity from observed history."""

    def __init__(self, service: CarbonIntensityService):
        self._service = service

    @property
    def service(self) -> CarbonIntensityService:
        return self._service

    def observe(self, time_s: float) -> float:
        """Feed the forecaster one observation (delegates to the service)."""
        return self._service.observe(time_s)

    @abc.abstractmethod
    def predict(self, now_s: float, horizon_s: float) -> np.ndarray:
        """Predicted intensities for (now, now + horizon], 5-min steps."""

    def percentile(self, now_s: float, window_s: float, q: float) -> float:
        """The q-th percentile of the predicted window.

        This is the threshold a deployed suspend/resume or Wait&Scale
        policy would compute (the paper derives it from the trace, which
        equals :class:`OracleForecaster`).
        """
        prediction = self.predict(now_s, window_s)
        if len(prediction) == 0:
            raise TraceError("empty forecast window")
        return float(np.percentile(prediction, q))

    @staticmethod
    def _steps(horizon_s: float) -> int:
        if horizon_s <= 0:
            raise TraceError(f"horizon must be positive, got {horizon_s}")
        return max(1, int(math.ceil(horizon_s / SAMPLE_INTERVAL_S)))


class PersistenceForecaster(CarbonForecaster):
    """Naive baseline: the current intensity persists over the horizon."""

    def predict(self, now_s: float, horizon_s: float) -> np.ndarray:
        current = self._service.intensity_at(now_s)
        return np.full(self._steps(horizon_s), current)


class DiurnalProfileForecaster(CarbonForecaster):
    """Average of the last ``history_days`` days at the same time of day.

    Maintains per-slot (5-minute-of-day) running means over the
    observations fed via :meth:`observe`; slots with no history fall
    back to persistence.
    """

    def __init__(self, service: CarbonIntensityService, history_days: int = 3):
        super().__init__(service)
        if history_days <= 0:
            raise TraceError("history must cover at least one day")
        self._history_days = history_days
        self._slots: Dict[int, List[float]] = defaultdict(list)

    @staticmethod
    def _slot(time_s: float) -> int:
        return int((time_s % SECONDS_PER_DAY) // SAMPLE_INTERVAL_S)

    def observe(self, time_s: float) -> float:
        value = super().observe(time_s)
        bucket = self._slots[self._slot(time_s)]
        bucket.append(value)
        if len(bucket) > self._history_days:
            bucket.pop(0)
        return value

    def predict(self, now_s: float, horizon_s: float) -> np.ndarray:
        steps = self._steps(horizon_s)
        fallback = self._service.intensity_at(now_s)
        prediction = np.empty(steps)
        for i in range(steps):
            t = now_s + (i + 1) * SAMPLE_INTERVAL_S
            bucket = self._slots.get(self._slot(t))
            prediction[i] = float(np.mean(bucket)) if bucket else fallback
        return prediction


class OracleForecaster(CarbonForecaster):
    """Perfect foresight: reads the underlying trace (the paper's setup)."""

    def predict(self, now_s: float, horizon_s: float) -> np.ndarray:
        steps = self._steps(horizon_s)
        return np.asarray([
            self._service.intensity_at(now_s + (i + 1) * SAMPLE_INTERVAL_S)
            for i in range(steps)
        ])


def forecast_error_mae(
    forecaster: CarbonForecaster, now_s: float, horizon_s: float
) -> float:
    """Mean absolute error of a forecast against the trace's truth."""
    predicted = forecaster.predict(now_s, horizon_s)
    truth = OracleForecaster(forecaster.service).predict(now_s, horizon_s)
    return float(np.abs(predicted - truth).mean())
