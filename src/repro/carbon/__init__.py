"""Carbon information services, synthetic region traces, and forecasting."""

from repro.carbon.forecast import (
    CarbonForecaster,
    DiurnalProfileForecaster,
    OracleForecaster,
    PersistenceForecaster,
    forecast_error_mae,
)
from repro.carbon.service import CarbonIntensityService
from repro.carbon.traces import (
    REGION_PROFILES,
    CarbonTrace,
    RegionProfile,
    SAMPLE_INTERVAL_S,
    constant_trace,
    make_region_trace,
    synthesize_trace,
)

__all__ = [
    "CarbonForecaster",
    "CarbonIntensityService",
    "CarbonTrace",
    "DiurnalProfileForecaster",
    "OracleForecaster",
    "PersistenceForecaster",
    "REGION_PROFILES",
    "RegionProfile",
    "SAMPLE_INTERVAL_S",
    "constant_trace",
    "forecast_error_mae",
    "make_region_trace",
    "synthesize_trace",
]
