"""Command-line interface: regenerate any paper figure from the shell.

Usage::

    python -m repro list                 # available experiments
    python -m repro fig04a               # ML training policy comparison
    python -m repro fig04a --reps 4      # quicker, fewer arrivals
    python -m repro fig10 --points 20,50,80

Each command runs the same experiment builder the benchmarks use and
prints the figure's rows.  Everything is deterministic.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence


def _print_batch(summaries, title: str) -> None:
    base = summaries[0]
    print(f"=== {title} ===")
    print(f"{'policy':14s} {'runtime':>11s} {'x agn':>7s} {'carbon':>10s} "
          f"{'vs agn':>8s}")
    for s in summaries:
        print(
            f"{s.policy_label:14s} {s.mean_runtime_hours:9.2f} h "
            f"{s.runtime_ratio_vs(base):6.2f}x {s.mean_carbon_g:8.3f} g "
            f"{s.carbon_change_vs(base) * 100:+7.1f}%"
        )


def cmd_fig01(args) -> None:
    import numpy as np

    from repro.analysis import fig01_carbon_traces

    bundle = fig01_carbon_traces(days=args.days)
    print("=== Figure 1: carbon intensity by region (g/kWh) ===")
    for region in ("ontario", "uruguay", "caiso"):
        values = np.asarray([v for _, v in bundle.series[region]])
        print(
            f"{region:10s} mean {values.mean():6.1f}  min {values.min():6.1f}  "
            f"max {values.max():6.1f}  std {values.std():6.1f}"
        )


def cmd_fig04a(args) -> None:
    from repro.analysis import fig04a_ml_training

    _print_batch(
        fig04a_ml_training(reps=args.reps),
        f"Figure 4a: ML training ({args.reps} arrivals)",
    )


def cmd_fig04b(args) -> None:
    from repro.analysis import fig04b_blast

    _print_batch(
        fig04b_blast(reps=args.reps),
        f"Figure 4b: BLAST ({args.reps} arrivals)",
    )


def cmd_fig05(args) -> None:
    from repro.analysis import fig05_multitenancy

    out = fig05_multitenancy(days=args.days)
    print("=== Figure 5: multi-tenant scaling ===")
    print(f"ML threshold:    {out['ml_threshold']:.1f} g/kWh")
    print(f"BLAST threshold: {out['blast_threshold']:.1f} g/kWh")
    for name in ("ml-training", "blast"):
        counts = [v for _, v in out["bundle"].series[f"{name}_containers"]]
        print(f"{name:12s} containers 0..{max(counts):.0f}")
    print(f"carbon: ML {out['ml_carbon_g']:.3f} g, BLAST {out['blast_carbon_g']:.3f} g")


def cmd_fig06(args) -> None:
    from repro.analysis import fig06_07_web_budgeting

    out = fig06_07_web_budgeting()
    print("=== Figures 6-7: web carbon budgeting (48 h) ===")
    for r in out["results"]:
        print(
            f"{r.policy_label:16s} {r.app_name:9s} SLO {r.slo_ms:4.0f}ms "
            f"violations {r.violation_fraction * 100:5.2f}%  "
            f"carbon {r.carbon_g:6.2f} g"
        )


def cmd_fig08(args) -> None:
    from repro.analysis import fig08_09_battery_policies

    out = fig08_09_battery_policies()
    print("=== Figures 8-9: battery policies (zero-carbon) ===")
    print(
        f"spark: static {out['spark_runtime_static_s'] / 3600:.1f} h, "
        f"dynamic {out['spark_runtime_dynamic_s'] / 3600:.1f} h "
        f"(-{out['spark_runtime_reduction_pct']:.1f}%)"
    )
    for r in out["web_results"]:
        print(
            f"web {r.policy_label:14s} violations "
            f"{r.violation_fraction * 100:5.1f}%"
        )
    print(f"carbon: {out['zero_carbon']}")


def _parse_points(spec: Optional[str], default: Sequence[int]) -> tuple:
    if not spec:
        return tuple(default)
    return tuple(int(p) for p in spec.split(","))


def cmd_fig10(args) -> None:
    from repro.analysis import fig10_solar_caps

    rows = fig10_solar_caps(
        percentages=_parse_points(args.points, (10, 30, 50, 70, 90))
    )
    print("=== Figure 10(c): solar power balancing ===")
    for row in rows:
        print(
            f"solar {row['solar_pct']:3.0f}%  improvement "
            f"{row['runtime_improvement_pct']:5.1f}%  "
            f"work/J {row['energy_efficiency_per_j']:.4f}"
        )


def cmd_fig11(args) -> None:
    from repro.analysis import fig11_straggler_mitigation

    rows = fig11_straggler_mitigation(
        percentages=_parse_points(args.points, (100, 125, 150, 175, 200))
    )
    print("=== Figure 11: straggler mitigation ===")
    for row in rows:
        print(
            f"solar {row['solar_pct']:3.0f}%  improvement "
            f"{row['runtime_improvement_pct']:5.1f}%  "
            f"work/J {row['energy_efficiency_per_j']:.4f}"
        )


COMMANDS: Dict[str, Callable] = {
    "fig01": cmd_fig01,
    "fig04a": cmd_fig04a,
    "fig04b": cmd_fig04b,
    "fig05": cmd_fig05,
    "fig06": cmd_fig06,
    "fig07": cmd_fig06,  # same experiment; Figure 7 is its other view
    "fig08": cmd_fig08,
    "fig09": cmd_fig08,  # same experiment; Figure 9 is its other view
    "fig10": cmd_fig10,
    "fig11": cmd_fig11,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures from the Ecovisor paper (ASPLOS 2023).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(COMMANDS) + ["list"],
        help="which figure to regenerate (or 'list')",
    )
    parser.add_argument(
        "--reps", type=int, default=10,
        help="repetitions for Figure 4 experiments (default 10)",
    )
    parser.add_argument(
        "--days", type=int, default=2,
        help="trace days for Figures 1 and 5 (default 2)",
    )
    parser.add_argument(
        "--points", type=str, default=None,
        help="comma-separated sweep points for Figures 10/11",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        print("available experiments:")
        for name in sorted(COMMANDS):
            print(f"  {name}")
        return 0
    COMMANDS[args.experiment](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
