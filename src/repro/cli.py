"""Command-line interface: regenerate figures and run scenario sweeps.

Usage::

    python -m repro list                 # available experiments
    python -m repro fig04a               # ML training policy comparison
    python -m repro fig04a --reps 4      # quicker, fewer arrivals
    python -m repro fig10 --points 20,50,80
    python -m repro scenarios            # the registered scenario catalog
    python -m repro routes               # the live /v1 REST route table
    python -m repro sweep smoke --jobs 2 # run a scenario matrix in parallel
    python -m repro sweep fig10_solar_caps --jobs 4 --param solar_pct=10/50/90
    python -m repro sweep extension_market --jobs 4 --out market.csv
    python -m repro profile fleet_medium # tick-phase profile of a fleet run
    python -m repro profile fleet_large --ticks 30 --out profile.json
    python -m repro serve fleet_small --port 8090   # async API gateway
    python -m repro serve fleet_medium --port 0 --tick-interval 0.25
    python -m repro traces               # bundled signal datasets
    python -m repro traces show caiso-2022
    python -m repro traces validate      # checksum-verify every dataset

Each figure command runs the same experiment builder the benchmarks use
and prints the figure's rows.  ``sweep`` expands a registered scenario's
parameter matrix and executes it across worker processes (``--jobs``),
printing one tidy row per run plus provenance (config hash, wall time).
``--param k=v,...`` pins parameters; a ``/``-separated value list (e.g.
``solar_pct=10/50/90``) redefines a sweep axis.  ``--out PATH`` persists
the results table (CSV when PATH ends in ``.csv``, canonical JSON
otherwise) so CI and benchmarks can consume artifacts instead of
scraping stdout.  Everything is deterministic: a parallel sweep produces
byte-identical metrics (and written tables) to the serial fallback
(``--jobs 1``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Callable, Dict, List, Optional, Sequence


def _print_batch(summaries, title: str) -> None:
    base = summaries[0]
    print(f"=== {title} ===")
    print(f"{'policy':14s} {'runtime':>11s} {'x agn':>7s} {'carbon':>10s} "
          f"{'vs agn':>8s}")
    for s in summaries:
        print(
            f"{s.policy_label:14s} {s.mean_runtime_hours:9.2f} h "
            f"{s.runtime_ratio_vs(base):6.2f}x {s.mean_carbon_g:8.3f} g "
            f"{s.carbon_change_vs(base) * 100:+7.1f}%"
        )


def cmd_fig01(args) -> None:
    import numpy as np

    from repro.analysis import fig01_carbon_traces

    bundle = fig01_carbon_traces(days=args.days)
    print("=== Figure 1: carbon intensity by region (g/kWh) ===")
    for region in ("ontario", "uruguay", "caiso"):
        values = np.asarray([v for _, v in bundle.series[region]])
        print(
            f"{region:10s} mean {values.mean():6.1f}  min {values.min():6.1f}  "
            f"max {values.max():6.1f}  std {values.std():6.1f}"
        )


def cmd_fig04a(args) -> None:
    from repro.analysis import fig04a_ml_training

    _print_batch(
        fig04a_ml_training(reps=args.reps),
        f"Figure 4a: ML training ({args.reps} arrivals)",
    )


def cmd_fig04b(args) -> None:
    from repro.analysis import fig04b_blast

    _print_batch(
        fig04b_blast(reps=args.reps),
        f"Figure 4b: BLAST ({args.reps} arrivals)",
    )


def cmd_fig05(args) -> None:
    from repro.analysis import fig05_multitenancy

    out = fig05_multitenancy(days=args.days)
    print("=== Figure 5: multi-tenant scaling ===")
    print(f"ML threshold:    {out['ml_threshold']:.1f} g/kWh")
    print(f"BLAST threshold: {out['blast_threshold']:.1f} g/kWh")
    for name in ("ml-training", "blast"):
        counts = [v for _, v in out["bundle"].series[f"{name}_containers"]]
        print(f"{name:12s} containers 0..{max(counts):.0f}")
    print(f"carbon: ML {out['ml_carbon_g']:.3f} g, BLAST {out['blast_carbon_g']:.3f} g")


def cmd_fig06(args) -> None:
    from repro.analysis import fig06_07_web_budgeting

    out = fig06_07_web_budgeting()
    print("=== Figures 6-7: web carbon budgeting (48 h) ===")
    for r in out["results"]:
        print(
            f"{r.policy_label:16s} {r.app_name:9s} SLO {r.slo_ms:4.0f}ms "
            f"violations {r.violation_fraction * 100:5.2f}%  "
            f"carbon {r.carbon_g:6.2f} g"
        )


def cmd_fig08(args) -> None:
    from repro.analysis import fig08_09_battery_policies

    out = fig08_09_battery_policies()
    print("=== Figures 8-9: battery policies (zero-carbon) ===")
    print(
        f"spark: static {out['spark_runtime_static_s'] / 3600:.1f} h, "
        f"dynamic {out['spark_runtime_dynamic_s'] / 3600:.1f} h "
        f"(-{out['spark_runtime_reduction_pct']:.1f}%)"
    )
    for r in out["web_results"]:
        print(
            f"web {r.policy_label:14s} violations "
            f"{r.violation_fraction * 100:5.1f}%"
        )
    print(f"carbon: {out['zero_carbon']}")


def _parse_points(spec: Optional[str], default: Sequence[int]) -> tuple:
    if not spec:
        return tuple(default)
    return tuple(int(p) for p in spec.split(","))


def cmd_fig10(args) -> None:
    from repro.analysis import fig10_solar_caps

    rows = fig10_solar_caps(
        percentages=_parse_points(args.points, (10, 30, 50, 70, 90))
    )
    print("=== Figure 10(c): solar power balancing ===")
    for row in rows:
        print(
            f"solar {row['solar_pct']:3.0f}%  improvement "
            f"{row['runtime_improvement_pct']:5.1f}%  "
            f"work/J {row['energy_efficiency_per_j']:.4f}"
        )


def cmd_fig11(args) -> None:
    from repro.analysis import fig11_straggler_mitigation

    rows = fig11_straggler_mitigation(
        percentages=_parse_points(args.points, (100, 125, 150, 175, 200))
    )
    print("=== Figure 11: straggler mitigation ===")
    for row in rows:
        print(
            f"solar {row['solar_pct']:3.0f}%  improvement "
            f"{row['runtime_improvement_pct']:5.1f}%  "
            f"work/J {row['energy_efficiency_per_j']:.4f}"
        )


def _parse_param_value(text: str) -> Any:
    """Parse one ``--param`` value: int, float, bool, or bare string."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for caster in (int, float):
        try:
            return caster(text)
        except ValueError:
            continue
    return text


def parse_param_overrides(entries: Sequence[str]) -> Dict[str, Any]:
    """Parse repeated ``--param k=v[,k=v...]`` flags into runner overrides.

    A scalar value pins a parameter; a ``/``-separated list (e.g.
    ``solar_pct=10/50/90``) becomes a sweep axis.
    """
    overrides: Dict[str, Any] = {}
    for entry in entries:
        for pair in entry.split(","):
            pair = pair.strip()
            if not pair:
                continue
            if "=" not in pair:
                raise ValueError(f"--param expects k=v, got {pair!r}")
            key, _, raw = pair.partition("=")
            key = key.strip()
            if "/" in raw:
                overrides[key] = [
                    _parse_param_value(v) for v in raw.split("/") if v
                ]
            else:
                overrides[key] = _parse_param_value(raw)
    return overrides


def build_route_rows() -> List[tuple]:
    """The live ``/v1`` route table as (method, path, transport, backing).

    Built from a freshly wired REST server (routes are static — the
    ecovisor underneath is a throwaway), so the printed table can never
    drift from the code; a test pins ``docs/api_tour.md`` against it.
    The transport column marks how the gateway serves each row: ``sync``
    rows dispatch through the writer thread, ``sse`` rows upgrade to a
    Server-Sent Events stream (gateway-only; the in-process router
    answers 501 for them).
    """
    from repro.rest.server import SSE_ROUTES, EcovisorRestServer
    from repro.sim.experiment import grid_environment

    server = EcovisorRestServer(grid_environment(days=1).ecovisor)
    return [
        (
            method,
            path,
            "sse" if (method, path) in SSE_ROUTES else "sync",
            backing,
        )
        for method, path, backing in server.router.route_table()
        if path.startswith("/v1/")
    ]


def cmd_routes(args) -> None:
    print(
        "method  path                                          "
        "transport  backing call"
    )
    for method, path, transport, backing in build_route_rows():
        print(f"{method:7s} {path:45s} {transport:10s} {backing}")
    print(
        "\nlegacy unversioned paths answer 301 with a Location header "
        "(admin routes are /v1-only); sse rows stream from the async "
        "gateway (`repro serve`)"
    )


def cmd_scenarios(args) -> None:
    from repro.sim import scenarios

    print("registered scenarios:")
    for name in scenarios.names():
        scenario = scenarios.get(name)
        axes = " x ".join(
            f"{axis}({len(values)})" for axis, values in scenario.sweep.items()
        )
        size = scenarios.matrix_size(name)
        print(f"  {name:24s} {size:3d} runs  [{axes or 'no axes'}]")
        if args.verbose:
            print(f"    {scenario.description}")


def cmd_traces(args) -> int:
    """``repro traces [list|show NAME|validate]`` — the dataset registry."""
    from repro.core.errors import DatasetIntegrityError, UnknownTraceNameError
    from repro.providers.registry import (
        DATASET_INTERVAL_S,
        DATASETS,
        descriptor,
        load_samples,
        validate_all,
    )

    action = args.scenario or "list"
    if action == "list":
        print(f"bundled datasets ({len(DATASETS)}):")
        print(f"{'name':22s} {'kind':9s} {'region':9s} {'units':12s} sha256")
        for name in sorted(DATASETS):
            desc = DATASETS[name]
            print(
                f"{desc.name:22s} {desc.kind:9s} {desc.region:9s} "
                f"{desc.units:12s} {desc.sha256[:12]}…"
            )
        print("\nuse 'traces show <name>' for one dataset, "
              "'traces validate' to checksum-verify all")
        return 0
    if action == "show":
        if not args.dataset:
            raise ValueError("traces show requires a dataset name")
        desc = descriptor(args.dataset)
        samples = load_samples(desc.name)
        duration_h = len(samples) * DATASET_INTERVAL_S / 3600.0
        print(f"dataset:  {desc.name}")
        print(f"kind:     {desc.kind}")
        print(f"region:   {desc.region}")
        print(f"units:    {desc.units}")
        print(f"sha256:   {desc.sha256}")
        print(f"file:     {desc.path}")
        print(f"samples:  {len(samples)} @ {DATASET_INTERVAL_S:.0f}s "
              f"({duration_h:.1f} h)")
        print(
            f"values:   min {samples.min():.4g}  mean {samples.mean():.4g}  "
            f"max {samples.max():.4g}"
        )
        print(f"about:    {desc.description}")
        return 0
    if action == "validate":
        try:
            results = validate_all()
        except DatasetIntegrityError as exc:
            print(f"FAIL: {exc}")
            return 1
        for name, sha in sorted(results.items()):
            print(f"ok  {name:22s} sha256 {sha}")
        print(f"=== {len(results)}/{len(DATASETS)} datasets verified ===")
        return 0
    raise UnknownTraceNameError(
        "traces action", action, ("list", "show", "validate")
    )


def cmd_sweep(args) -> int:
    from repro.sim.runner import run_sweep

    overrides = parse_param_overrides(args.param or [])
    sweep = run_sweep(args.scenario, overrides=overrides, jobs=args.jobs)
    mode = f"{sweep.jobs} worker processes" if sweep.jobs > 1 else "serial"
    print(f"=== sweep {args.scenario}: {len(sweep)} runs ({mode}) ===")
    if args.out:
        written = sweep.write(args.out)
        print(f"wrote results table to {written}")
    for result in sweep:
        spec = result.spec
        params = ",".join(f"{k}={spec.params[k]}" for k in sorted(spec.params))
        status = "ok " if result.ok else "ERR"
        print(
            f"[{spec.index:3d}] {status} {spec.config_hash}  "
            f"{result.wall_time_s:6.2f}s  {params}"
        )
        if result.ok:
            metrics = ", ".join(
                f"{k}={_fmt_metric(v)}" for k, v in sorted(result.metrics.items())
            )
            print(f"      {metrics}")
        else:
            print(f"      {result.error}")
    failed = sweep.failures()
    print(
        f"=== {len(sweep) - len(failed)}/{len(sweep)} ok, "
        f"total run time {sweep.total_wall_time_s():.2f}s ==="
    )
    return 1 if failed else 0


def _fmt_metric(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _fmt_seconds(seconds: float) -> str:
    """A phase duration scaled to a readable unit."""
    if seconds >= 1.0:
        return f"{seconds:8.3f} s "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:8.3f} ms"
    return f"{seconds * 1e6:8.1f} µs"


def run_profile(
    scenario_name: str, ticks: Optional[int] = None
) -> Dict[str, Any]:
    """Run one fleet scenario with the tick profiler on; returns a report.

    The report is what ``repro profile`` prints and ``--out`` persists:
    the profiler summary (phase table, histogram percentiles, slow
    ticks) plus the run's wall-clock time, so the phase-sum-vs-wall
    coverage figure is part of the artifact.
    """
    from time import perf_counter

    from repro.core.errors import ScenarioError
    from repro.sim import scenarios
    from repro.sim.fleet import build_churn_fleet, build_fleet

    scenario = scenarios.get(scenario_name)
    if "fleet" not in scenario.tags:
        raise ScenarioError(
            f"'profile' runs fleet scenarios (tagged 'fleet'); "
            f"{scenario_name!r} is not one — see 'repro scenarios'"
        )
    params = dict(scenario.defaults)
    if ticks is not None:
        params["ticks"] = ticks
    builder = build_churn_fleet if "churn" in scenario.tags else build_fleet
    fleet = builder(params)
    engine = fleet.engine
    engine.profiler.enabled = True
    start = perf_counter()
    executed = engine.run(int(params["ticks"]))
    wall_s = perf_counter() - start
    summary = engine.profiler.summary()
    phase_sum_s = sum(row["total_s"] for row in summary["phase_table"])
    return {
        "scenario": scenario_name,
        "params": params,
        "apps": len(fleet.applications),
        "containers": fleet.num_containers,
        "ticks_executed": executed,
        "wall_s": wall_s,
        "phase_sum_s": phase_sum_s,
        # Fraction of the run's wall-clock the phase brackets account
        # for (loop overhead outside the brackets is the remainder).
        "coverage": phase_sum_s / wall_s if wall_s > 0 else 0.0,
        "ticks_per_s": executed / wall_s if wall_s > 0 else 0.0,
        "summary": summary,
    }


def cmd_profile(args) -> int:
    report = run_profile(args.scenario, ticks=args.ticks)
    summary = report["summary"]
    print(
        f"=== profile {report['scenario']}: {report['apps']} apps, "
        f"{report['ticks_executed']} ticks, {report['wall_s']:.2f}s wall "
        f"({report['ticks_per_s']:.1f} ticks/s) ==="
    )
    print(
        f"{'phase':16s} {'total':>11s} {'mean/tick':>11s} {'p50':>11s} "
        f"{'p99':>11s} {'share':>7s}"
    )
    for row in summary["phase_table"]:
        print(
            f"{row['phase']:16s} {_fmt_seconds(row['total_s'])} "
            f"{_fmt_seconds(row['mean_s'])} {_fmt_seconds(row['p50_s'])} "
            f"{_fmt_seconds(row['p99_s'])} {row['share'] * 100:6.1f}%"
        )
    print(
        f"{'tick total':16s} {_fmt_seconds(summary['total_s'])} "
        f"{_fmt_seconds(summary['mean_tick_s'])} "
        f"{_fmt_seconds(summary['p50_tick_s'])} "
        f"{_fmt_seconds(summary['p99_tick_s'])} {100.0:6.1f}%"
    )
    print(
        f"phase sum {report['phase_sum_s']:.3f}s covers "
        f"{report['coverage'] * 100:.1f}% of wall-clock"
    )
    slow = summary["slow_ticks"]
    print(f"slow ticks (> {4.0:.0f}x median): {summary['slow_ticks_total']}")
    for entry in slow[-5:]:
        worst = max(entry["phases"], key=entry["phases"].get)
        print(
            f"  tick {entry['tick_index']:5d}  "
            f"{_fmt_seconds(entry['total_s'])}  "
            f"(median {_fmt_seconds(entry['median_s'])}, "
            f"dominated by {worst})"
        )
    if args.out:
        import json

        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"wrote profile report to {args.out}")
    return 0


def build_serve_environment(
    scenario_name: str, ticks: Optional[int] = None
) -> tuple:
    """A fleet environment for ``repro serve``: (fleet, params).

    Only fleet scenarios are servable — the gateway fronts one ecovisor
    with a live population, which is exactly what the fleet family
    builds deterministically from its parameter digest.
    """
    from repro.core.errors import ScenarioError
    from repro.sim import scenarios
    from repro.sim.fleet import build_churn_fleet, build_fleet

    scenario = scenarios.get(scenario_name)
    if "fleet" not in scenario.tags:
        raise ScenarioError(
            f"'serve' runs fleet scenarios (tagged 'fleet'); "
            f"{scenario_name!r} is not one — see 'repro scenarios'"
        )
    params = dict(scenario.defaults)
    if ticks is not None:
        params["ticks"] = ticks
    builder = build_churn_fleet if "churn" in scenario.tags else build_fleet
    return builder(params), params


def cmd_serve(args) -> int:
    """Serve a fleet scenario over the async gateway until interrupted.

    Prints one ``serving ... on http://host:port`` line once the socket
    is bound (port 0 resolves to the ephemeral port), steps the
    scenario's ticks on the gateway's writer thread, then keeps serving
    the final state until Ctrl-C.
    """
    import asyncio

    from repro.gateway import GatewayConfig, GatewayServer, TickDriver

    scenario_name = args.scenario or "fleet_small"
    fleet, params = build_serve_environment(scenario_name, ticks=args.ticks)

    async def serve() -> None:
        gateway = GatewayServer(
            fleet.ecovisor,
            config=GatewayConfig(host=args.host, port=args.port),
        )
        await gateway.start()
        driver = TickDriver(
            gateway, fleet.engine, tick_interval_seconds=args.tick_interval
        )
        print(
            f"serving {scenario_name} on "
            f"http://{gateway.host}:{gateway.port} "
            f"({len(fleet.applications)} apps, {params['ticks']} ticks)",
            flush=True,
        )
        try:
            await driver.run(int(params["ticks"]))
            print(
                f"scenario complete after {driver.ticks_run} ticks; "
                "serving final state (Ctrl-C to stop)",
                flush=True,
            )
            await asyncio.Event().wait()
        finally:
            await gateway.stop()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        print("stopped")
    return 0


COMMANDS: Dict[str, Callable] = {
    "fig01": cmd_fig01,
    "fig04a": cmd_fig04a,
    "fig04b": cmd_fig04b,
    "fig05": cmd_fig05,
    "fig06": cmd_fig06,
    "fig07": cmd_fig06,  # same experiment; Figure 7 is its other view
    "fig08": cmd_fig08,
    "fig09": cmd_fig08,  # same experiment; Figure 9 is its other view
    "fig10": cmd_fig10,
    "fig11": cmd_fig11,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures from the Ecovisor paper (ASPLOS 2023).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(COMMANDS) + [
            "list", "profile", "routes", "scenarios", "serve", "sweep",
            "traces",
        ],
        help="which figure to regenerate, 'list', 'routes', 'scenarios', "
             "'serve', 'sweep', 'profile', or 'traces'",
    )
    parser.add_argument(
        "scenario", nargs="?", default=None,
        help="registered scenario name (required for 'sweep' and "
             "'profile', optional for 'serve'); action for 'traces' "
             "(list/show/validate)",
    )
    parser.add_argument(
        "dataset", nargs="?", default=None,
        help="dataset name for 'traces show'",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for 'sweep' (1 = serial fallback)",
    )
    parser.add_argument(
        "--param", action="append", default=None, metavar="K=V[,K=V...]",
        help="pin a scenario parameter; V1/V2/... redefines a sweep axis",
    )
    parser.add_argument(
        "--out", type=str, default=None, metavar="PATH",
        help="write the sweep results table to PATH "
             "(.csv by extension, canonical JSON otherwise)",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="show scenario descriptions in 'scenarios'",
    )
    parser.add_argument(
        "--reps", type=int, default=10,
        help="repetitions for Figure 4 experiments (default 10)",
    )
    parser.add_argument(
        "--days", type=int, default=2,
        help="trace days for Figures 1 and 5 (default 2)",
    )
    parser.add_argument(
        "--points", type=str, default=None,
        help="comma-separated sweep points for Figures 10/11",
    )
    parser.add_argument(
        "--ticks", type=int, default=None,
        help="override the scenario's tick count for 'profile' and 'serve'",
    )
    parser.add_argument(
        "--host", type=str, default="127.0.0.1",
        help="bind address for 'serve' (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=8090,
        help="bind port for 'serve' (0 picks an ephemeral port)",
    )
    parser.add_argument(
        "--tick-interval", type=float, default=0.0, metavar="SECONDS",
        help="wall-clock pause between ticks for 'serve' "
             "(0 = run the scenario flat out, then keep serving)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if (
        args.experiment not in ("sweep", "profile", "serve", "traces")
        and args.scenario
    ):
        parser.error(
            f"unexpected argument {args.scenario!r} "
            f"(only 'sweep', 'profile', 'serve', and 'traces' take one)"
        )
    if args.experiment != "traces" and args.dataset:
        parser.error(
            f"unexpected argument {args.dataset!r} "
            f"(only 'traces show' takes a dataset name)"
        )
    if args.experiment == "list":
        print("available experiments:")
        for name in sorted(COMMANDS):
            print(f"  {name}")
        print(
            "plus: scenarios (catalog), sweep <scenario> (parallel runner), "
            "profile <scenario> (tick-phase profiler), "
            "serve <scenario> (async API gateway), "
            "traces (bundled dataset registry)"
        )
        return 0
    if args.experiment == "routes":
        cmd_routes(args)
        return 0
    if args.experiment == "scenarios":
        cmd_scenarios(args)
        return 0
    if args.experiment == "sweep":
        if not args.scenario:
            parser.error("sweep requires a scenario name (see 'scenarios')")
        from repro.core.errors import ScenarioError

        try:
            return cmd_sweep(args)
        except (ScenarioError, ValueError) as exc:
            parser.error(str(exc))
    if args.experiment == "profile":
        if not args.scenario:
            parser.error("profile requires a scenario name (see 'scenarios')")
        from repro.core.errors import ScenarioError

        try:
            return cmd_profile(args)
        except (ScenarioError, ValueError) as exc:
            parser.error(str(exc))
    if args.experiment == "serve":
        from repro.core.errors import ScenarioError

        try:
            return cmd_serve(args)
        except (ScenarioError, ValueError) as exc:
            parser.error(str(exc))
    if args.experiment == "traces":
        try:
            return cmd_traces(args)
        except ValueError as exc:
            parser.error(str(exc))
    COMMANDS[args.experiment](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
