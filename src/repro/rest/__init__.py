"""REST-shaped in-process API surface mirroring the prototype's server."""

from repro.rest.router import Request, Response, Route, Router
from repro.rest.server import EcovisorRestServer

__all__ = ["EcovisorRestServer", "Request", "Response", "Route", "Router"]
