"""The ecovisor's REST surface.

Maps the Table 1 API (plus container management) onto routes, mirroring
the prototype's REST server.  Applications are identified by the ``app``
path segment; every route goes through the same per-application
authorization as the in-process API.

Routes:

==========  =============================================  ===============
Method      Path                                            Table 1 call
==========  =============================================  ===============
GET         /apps/{app}/solar                               get_solar_power
GET         /apps/{app}/grid                                get_grid_power
GET         /apps/{app}/carbon                              get_grid_carbon
GET         /apps/{app}/price                               get_grid_price
GET         /apps/{app}/cost                                get_energy_cost
GET         /apps/{app}/battery                             charge level + discharge rate
POST        /apps/{app}/battery/charge_rate                 set_battery_charge_rate
POST        /apps/{app}/battery/max_discharge               set_battery_max_discharge
GET         /apps/{app}/containers                          list containers
POST        /apps/{app}/containers                          launch container
DELETE      /apps/{app}/containers/{cid}                    stop container
GET         /apps/{app}/containers/{cid}/power              get_container_power
GET         /apps/{app}/containers/{cid}/powercap           get_container_powercap
POST        /apps/{app}/containers/{cid}/powercap           set_container_powercap
POST        /apps/{app}/scale                               horizontal scale
==========  =============================================  ===============
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.core.api import EcovisorAPI, connect
from repro.core.ecovisor import Ecovisor
from repro.rest.router import Request, Response, Router

_MISSING = object()


def _body_field(request: Request, name: str, cast: Callable, default: Any = _MISSING):
    """Extract and convert one body field; raises ``ValueError`` on bad input.

    Validation happens here, at the handler edge, so a missing or
    malformed *client* field maps to 400 while genuine server bugs
    (stray KeyError/TypeError deeper in the stack) still surface as 500.
    """
    if name in request.body:
        raw = request.body[name]
    elif default is not _MISSING:
        raw = default
    else:
        raise ValueError(f"missing field: {name!r}")
    try:
        return cast(raw)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"malformed field {name!r}: {exc}") from None


class EcovisorRestServer:
    """In-process REST facade over an :class:`Ecovisor`."""

    def __init__(self, ecovisor: Ecovisor):
        self._ecovisor = ecovisor
        self._apis: Dict[str, EcovisorAPI] = {}
        self._router = Router()
        self._install_routes()

    @property
    def router(self) -> Router:
        return self._router

    def request(self, method: str, path: str, body: dict | None = None) -> Response:
        """Issue one request against the API surface."""
        return self._router.dispatch(method, path, body)

    # ------------------------------------------------------------------
    # Route handlers
    # ------------------------------------------------------------------
    def _api(self, app_name: str) -> EcovisorAPI:
        if app_name not in self._apis:
            # connect() raises UnknownApplicationError for unregistered apps.
            self._ecovisor.ves_for(app_name)
            self._apis[app_name] = connect(self._ecovisor, app_name)
        return self._apis[app_name]

    def _install_routes(self) -> None:
        r = self._router
        r.add("GET", "/apps/{app}/solar", self._get_solar)
        r.add("GET", "/apps/{app}/grid", self._get_grid)
        r.add("GET", "/apps/{app}/carbon", self._get_carbon)
        r.add("GET", "/apps/{app}/price", self._get_price)
        r.add("GET", "/apps/{app}/cost", self._get_cost)
        r.add("GET", "/apps/{app}/battery", self._get_battery)
        r.add("POST", "/apps/{app}/battery/charge_rate", self._set_charge_rate)
        r.add("POST", "/apps/{app}/battery/max_discharge", self._set_max_discharge)
        r.add("GET", "/apps/{app}/containers", self._list_containers)
        r.add("POST", "/apps/{app}/containers", self._launch_container)
        r.add("DELETE", "/apps/{app}/containers/{cid}", self._stop_container)
        r.add("GET", "/apps/{app}/containers/{cid}/power", self._container_power)
        r.add("GET", "/apps/{app}/containers/{cid}/powercap", self._get_powercap)
        r.add("POST", "/apps/{app}/containers/{cid}/powercap", self._set_powercap)
        r.add("POST", "/apps/{app}/scale", self._scale)

    def _get_solar(self, request: Request):
        return {"solar_w": self._api(request.params["app"]).get_solar_power()}

    def _get_grid(self, request: Request):
        return {"grid_w": self._api(request.params["app"]).get_grid_power()}

    def _get_carbon(self, request: Request):
        return {
            "carbon_g_per_kwh": self._api(request.params["app"]).get_grid_carbon()
        }

    def _get_price(self, request: Request):
        return {
            "price_usd_per_kwh": self._api(request.params["app"]).get_grid_price()
        }

    def _get_cost(self, request: Request):
        return {"cost_usd": self._api(request.params["app"]).get_energy_cost()}

    def _get_battery(self, request: Request):
        api = self._api(request.params["app"])
        return {
            "charge_level_wh": api.get_battery_charge_level(),
            "capacity_wh": api.get_battery_capacity(),
            "discharge_rate_w": api.get_battery_discharge_rate(),
        }

    def _set_charge_rate(self, request: Request):
        api = self._api(request.params["app"])
        api.set_battery_charge_rate(_body_field(request, "watts", float))
        return {"ok": True}

    def _set_max_discharge(self, request: Request):
        api = self._api(request.params["app"])
        api.set_battery_max_discharge(_body_field(request, "watts", float))
        return {"ok": True}

    def _list_containers(self, request: Request):
        api = self._api(request.params["app"])
        return {
            "containers": [
                {
                    "id": c.id,
                    "cores": c.cores,
                    "role": c.role,
                    "power_cap_w": c.power_cap_w,
                }
                for c in api.list_containers()
            ]
        }

    def _launch_container(self, request: Request):
        api = self._api(request.params["app"])
        container = api.launch_container(
            _body_field(request, "cores", float, default=1.0),
            gpu=bool(request.body.get("gpu", False)),
            role=str(request.body.get("role", "worker")),
        )
        return {"id": container.id, "cores": container.cores, "role": container.role}

    def _stop_container(self, request: Request):
        api = self._api(request.params["app"])
        api.stop_container(request.params["cid"])
        return {"ok": True}

    def _container_power(self, request: Request):
        api = self._api(request.params["app"])
        return {"power_w": api.get_container_power(request.params["cid"])}

    def _get_powercap(self, request: Request):
        api = self._api(request.params["app"])
        return {"powercap_w": api.get_container_powercap(request.params["cid"])}

    def _set_powercap(self, request: Request):
        api = self._api(request.params["app"])
        watts = request.body.get("watts")
        api.set_container_powercap(
            request.params["cid"],
            None if watts is None else _body_field(request, "watts", float),
        )
        return {"ok": True}

    def _scale(self, request: Request):
        api = self._api(request.params["app"])
        containers = api.scale_to(
            _body_field(request, "count", int),
            _body_field(request, "cores", float, default=1.0),
            gpu=bool(request.body.get("gpu", False)),
            role=str(request.body.get("role", "worker")),
        )
        return {"containers": [c.id for c in containers]}
