"""The ecovisor's REST surface (versioned, snapshot-first v1).

Maps the Table 1 API (plus container management) onto routes, mirroring
the prototype's REST server.  Applications are identified by the ``app``
path segment; every route goes through the same per-application
authorization as the in-process API.

The surface is versioned under ``/v1``.  The headline route is::

    GET /v1/apps/{app}/state

which returns the application's full immutable per-tick
:class:`~repro.core.state.EnergyState` snapshot in **one** round-trip —
solar, grid, carbon, price, battery (``null`` without a battery share),
per-container power, and cumulative ledger figures — instead of the
getter-per-field polling the unversioned surface encouraged.  Legacy
unversioned paths answer ``301 Moved Permanently`` with a ``Location``
header pointing at the ``/v1`` equivalent.

Control plane v1.1 adds the **admin namespace** (dynamic application
lifecycle — no legacy twin, so only under ``/v1/admin``) and the
**event feed**: ``GET /v1/apps/{app}/events?cursor=N`` is a cursor-paged
read of the application's bounded event journal, letting an external
controller tail the signals the in-process ``SignalBus`` delivered
without holding a callback in this process.

Routes (all under ``/v1``):

==========  =============================================  ===================
Method      Path                                            Backing call
==========  =============================================  ===================
GET         /v1/apps/{app}/state                            api.state()
GET         /v1/apps/{app}/solar                            state.solar_power_w
GET         /v1/apps/{app}/grid                             state.grid_power_w
GET         /v1/apps/{app}/carbon                           state.grid_carbon_g_per_kwh
GET         /v1/apps/{app}/price                            state.grid_price_usd_per_kwh
GET         /v1/apps/{app}/cost                             state.total_cost_usd
GET         /v1/apps/{app}/battery                          state.battery
POST        /v1/apps/{app}/battery/charge_rate              set_battery_charge_rate
POST        /v1/apps/{app}/battery/max_discharge            set_battery_max_discharge
GET         /v1/apps/{app}/containers                       list containers
POST        /v1/apps/{app}/containers                       launch container
DELETE      /v1/apps/{app}/containers/{cid}                 stop container
GET         /v1/apps/{app}/containers/{cid}/power           state.container_power_w
GET         /v1/apps/{app}/containers/{cid}/powercap        get_container_powercap
POST        /v1/apps/{app}/containers/{cid}/powercap        set_container_powercap
POST        /v1/apps/{app}/containers/{cid}/cores           set_container_cores
POST        /v1/apps/{app}/scale                            horizontal scale
GET         /v1/apps/{app}/events                           ecovisor.events_for
GET         /v1/apps/{app}/events/stream                    SSE (async gateway)
GET         /v1/metrics                                     metrics.render (Prometheus text)
GET         /v1/metrics/ticks                               profiler.ticks_payload
GET         /v1/admin/apps                                  ecovisor.app_shares
POST        /v1/admin/apps                                  ecovisor.admit_app
GET         /v1/admin/apps/{app}                            ecovisor.share_for
PATCH       /v1/admin/apps/{app}                            ecovisor.set_share
DELETE      /v1/admin/apps/{app}                            ecovisor.evict_app
==========  =============================================  ===================
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict, Optional
from urllib.parse import urlencode

from repro.core.accounting import AppAccount
from repro.core.api import EcovisorAPI, connect
from repro.core.config import ShareConfig
from repro.core.ecovisor import Ecovisor
from repro.core.events import AppEvictedEvent, event_to_dict
from repro.core.state import EnergyState
from repro.rest.router import Request, Response, Router

_MISSING = object()

#: Version prefix of the current API surface.
API_PREFIX = "/v1"

#: ``Cache-Control`` for snapshot-derived reads: a cached copy may be
#: reused only after revalidation (the ETag below makes that one cheap
#: 304 round-trip instead of a re-serialization).
SNAPSHOT_CACHE_CONTROL = "max-age=0, must-revalidate"

#: ``Cache-Control`` for the metrics scrape and the admin namespace:
#: live operational state, never cacheable.
NO_STORE_CACHE_CONTROL = "no-store"

#: Routes the async gateway serves over Server-Sent Events rather than
#: one-shot request/response.  The ``repro routes`` CLI uses this to
#: mark each row's transport; the sync in-process server answers them
#: with 501 pointing at ``repro serve``.
SSE_ROUTES = frozenset({("GET", "/v1/apps/{app}/events/stream")})


def snapshot_etag(state: EnergyState) -> str:
    """The strong ETag of one application's per-tick snapshot.

    Keyed on ``(app, tick, settled)``: a snapshot is immutable once
    built, but the same tick index exists in two versions (pre- and
    post-settlement), so the settled flag must participate or a cached
    mid-tick body could shadow the finalized one.
    """
    return f'"{state.app_name}:{state.tick_index}:{int(state.settled)}"'


def etag_matches(header_value: Optional[str], etag: str) -> bool:
    """Whether an ``If-None-Match`` header revalidates ``etag``.

    Handles the ``*`` wildcard, comma-separated candidate lists, and
    weak validators (``W/"..."`` compares equal to its strong form —
    byte-range semantics don't apply to JSON bodies).
    """
    if header_value is None:
        return False
    if header_value.strip() == "*":
        return True
    for candidate in header_value.split(","):
        candidate = candidate.strip()
        if candidate.startswith("W/"):
            candidate = candidate[2:]
        if candidate == etag:
            return True
    return False


def _body_field(request: Request, name: str, cast: Callable, default: Any = _MISSING):
    """Extract and convert one body field; raises ``ValueError`` on bad input.

    Validation happens here, at the handler edge, so a missing or
    malformed *client* field maps to 400 while genuine server bugs
    (stray KeyError/TypeError deeper in the stack) still surface as 500.
    """
    if name in request.body:
        raw = request.body[name]
    elif default is not _MISSING:
        raw = default
    else:
        raise ValueError(f"missing field: {name!r}")
    try:
        return cast(raw)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"malformed field {name!r}: {exc}") from None


def _query_field(request: Request, name: str, cast: Callable, default: Any = _MISSING):
    """Extract and convert one query-string parameter (400 on bad input).

    The missing-value default is returned *uncast*, so ``default=None``
    means "parameter absent" rather than ``cast(None)``.
    """
    if name not in request.query:
        if default is not _MISSING:
            return default
        raise ValueError(f"missing query parameter: {name!r}")
    try:
        return cast(request.query[name])
    except (TypeError, ValueError) as exc:
        raise ValueError(f"malformed query parameter {name!r}: {exc}") from None


class EcovisorRestServer:
    """In-process REST facade over an :class:`Ecovisor`."""

    def __init__(self, ecovisor: Ecovisor):
        self._ecovisor = ecovisor
        self._apis: Dict[str, EcovisorAPI] = {}
        self._router = Router()
        self._install_routes()
        # Count and time every dispatch — including 404/405 paths no
        # handler sees — into the ecovisor's registry, which the
        # /v1/metrics route below then serves.
        self._router.instrument(ecovisor.metrics)
        # Invalidate the cached per-app API handle on *any* eviction —
        # in-process, engine-scheduled, or via this server's own admin
        # route — so a re-admission under the same name binds a fresh
        # virtual energy system instead of the evicted one.
        ecovisor.events.subscribe(AppEvictedEvent, self._on_app_evicted)

    def _on_app_evicted(self, event: AppEvictedEvent) -> None:
        self._apis.pop(event.app_name, None)

    @property
    def router(self) -> Router:
        return self._router

    def request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        follow_redirects: bool = False,
        headers: dict | None = None,
    ) -> Response:
        """Issue one request against the API surface.

        ``follow_redirects`` chases the 301 from a legacy unversioned
        path to its ``/v1`` home (one hop), the way an HTTP client
        configured to follow redirects would.  ``headers`` carries
        request headers (e.g. ``If-None-Match`` for conditional GETs).
        """
        response = self._router.dispatch(method, path, body, headers)
        if follow_redirects and response.is_redirect and response.location:
            response = self._router.dispatch(
                method, response.location, body, headers
            )
        return response

    # ------------------------------------------------------------------
    # Route handlers
    # ------------------------------------------------------------------
    def _api(self, app_name: str) -> EcovisorAPI:
        if app_name not in self._apis:
            # connect() raises UnknownApplicationError for unregistered apps.
            self._ecovisor.ves_for(app_name)
            self._apis[app_name] = connect(self._ecovisor, app_name)
        return self._apis[app_name]

    def _add(self, method: str, pattern: str, handler) -> None:
        """Register a v1 route plus the 301 redirect from the legacy path."""
        self._router.add(method, API_PREFIX + pattern, handler)
        self._router.add(method, pattern, self._redirect_to_v1)

    def _snapshot_response(self, request: Request, payload_fn) -> Response:
        """Serve one snapshot-derived read with conditional-GET support.

        Every snapshot route carries ``ETag`` (keyed on app/tick/settled)
        and ``Cache-Control: max-age=0, must-revalidate``; a matching
        ``If-None-Match`` validator short-circuits to ``304 Not
        Modified`` without serializing a body.
        """
        state = self._api(request.params["app"]).state()
        etag = snapshot_etag(state)
        headers = {"ETag": etag, "Cache-Control": SNAPSHOT_CACHE_CONTROL}
        if etag_matches(request.header("If-None-Match"), etag):
            return Response(304, None, headers=headers)
        return Response(200, payload_fn(state), headers=headers)

    def _redirect_to_v1(self, request: Request) -> Response:
        location = API_PREFIX + request.path
        if request.query:
            # Preserve the query string (e.g. the event feed's cursor)
            # across the redirect, as an HTTP 301 would.
            location += "?" + urlencode(request.query)
        return Response(
            301,
            {"error": "moved permanently", "location": location},
            headers={"Location": location},
        )

    def _add_admin(self, method: str, pattern: str, handler) -> None:
        """Register a v1-only route (no legacy twin) as uncacheable.

        The metrics scrape and the admin namespace are live operational
        state: every response (success or error Response alike) carries
        ``Cache-Control: no-store`` unless the handler set its own.
        """
        self._router.add(method, API_PREFIX + pattern, _no_store(handler))

    def _install_routes(self) -> None:
        self._add("GET", "/apps/{app}/state", self._get_state)
        self._add("GET", "/apps/{app}/solar", self._get_solar)
        self._add("GET", "/apps/{app}/grid", self._get_grid)
        self._add("GET", "/apps/{app}/carbon", self._get_carbon)
        self._add("GET", "/apps/{app}/price", self._get_price)
        self._add("GET", "/apps/{app}/cost", self._get_cost)
        self._add("GET", "/apps/{app}/battery", self._get_battery)
        self._add("POST", "/apps/{app}/battery/charge_rate", self._set_charge_rate)
        self._add("POST", "/apps/{app}/battery/max_discharge", self._set_max_discharge)
        self._add("GET", "/apps/{app}/containers", self._list_containers)
        self._add("POST", "/apps/{app}/containers", self._launch_container)
        self._add("DELETE", "/apps/{app}/containers/{cid}", self._stop_container)
        self._add("GET", "/apps/{app}/containers/{cid}/power", self._container_power)
        self._add("GET", "/apps/{app}/containers/{cid}/powercap", self._get_powercap)
        self._add("POST", "/apps/{app}/containers/{cid}/powercap", self._set_powercap)
        self._add("POST", "/apps/{app}/containers/{cid}/cores", self._set_cores)
        self._add("POST", "/apps/{app}/scale", self._scale)
        self._add("GET", "/apps/{app}/events", self._app_events)
        # The push twin of the cursor feed.  v1-only (no legacy twin):
        # the async gateway serves it over SSE; in-process the stub
        # answers 501 pointing at `repro serve`.
        self._add_admin("GET", "/apps/{app}/events/stream", self._app_events_stream)
        # Observability surface (v1-only, like admin: no legacy twin).
        self._add_admin("GET", "/metrics", self._get_metrics)
        self._add_admin("GET", "/metrics/ticks", self._get_metrics_ticks)
        self._add_admin("GET", "/admin/apps", self._admin_list_apps)
        self._add_admin("POST", "/admin/apps", self._admin_admit_app)
        self._add_admin("GET", "/admin/apps/{app}", self._admin_get_app)
        self._add_admin("PATCH", "/admin/apps/{app}", self._admin_set_share)
        self._add_admin("DELETE", "/admin/apps/{app}", self._admin_evict_app)

    # Snapshot route: the whole Table 1 observation surface in one call.
    def _get_state(self, request: Request):
        return self._snapshot_response(request, lambda state: state.to_dict())

    def _get_solar(self, request: Request):
        return self._snapshot_response(
            request, lambda state: {"solar_w": state.solar_power_w}
        )

    def _get_grid(self, request: Request):
        return self._snapshot_response(
            request, lambda state: {"grid_w": state.grid_power_w}
        )

    def _get_carbon(self, request: Request):
        return self._snapshot_response(
            request,
            lambda state: {"carbon_g_per_kwh": state.grid_carbon_g_per_kwh},
        )

    def _get_price(self, request: Request):
        return self._snapshot_response(
            request,
            lambda state: {"price_usd_per_kwh": state.grid_price_usd_per_kwh},
        )

    def _get_cost(self, request: Request):
        return self._snapshot_response(
            request, lambda state: {"cost_usd": state.total_cost_usd}
        )

    def _get_battery(self, request: Request):
        return self._snapshot_response(
            request,
            lambda state: {
                "battery": state.battery.to_dict() if state.battery else None,
                # Zero-default figures (legacy access style, kept for
                # battery-less apps and pre-v1 clients).
                "charge_level_wh": state.battery_charge_level_wh,
                "capacity_wh": state.battery_capacity_wh,
                "discharge_rate_w": state.battery_discharge_rate_w,
            },
        )

    def _set_charge_rate(self, request: Request):
        api = self._api(request.params["app"])
        api.set_battery_charge_rate(_body_field(request, "watts", float))
        return {"ok": True}

    def _set_max_discharge(self, request: Request):
        api = self._api(request.params["app"])
        api.set_battery_max_discharge(_body_field(request, "watts", float))
        return {"ok": True}

    def _list_containers(self, request: Request):
        api = self._api(request.params["app"])
        return {
            "containers": [
                {
                    "id": c.id,
                    "cores": c.cores,
                    "role": c.role,
                    "power_cap_w": c.power_cap_w,
                }
                for c in api.list_containers()
            ]
        }

    def _launch_container(self, request: Request):
        api = self._api(request.params["app"])
        container = api.launch_container(
            _body_field(request, "cores", float, default=1.0),
            gpu=bool(request.body.get("gpu", False)),
            role=str(request.body.get("role", "worker")),
        )
        return {"id": container.id, "cores": container.cores, "role": container.role}

    def _stop_container(self, request: Request):
        api = self._api(request.params["app"])
        api.stop_container(request.params["cid"])
        return {"ok": True}

    def _container_power(self, request: Request):
        api = self._api(request.params["app"])
        return {"power_w": api.get_container_power(request.params["cid"])}

    def _get_powercap(self, request: Request):
        api = self._api(request.params["app"])
        return {"powercap_w": api.get_container_powercap(request.params["cid"])}

    def _set_powercap(self, request: Request):
        api = self._api(request.params["app"])
        watts = request.body.get("watts")
        api.set_container_powercap(
            request.params["cid"],
            None if watts is None else _body_field(request, "watts", float),
        )
        return {"ok": True}

    def _set_cores(self, request: Request):
        api = self._api(request.params["app"])
        api.set_container_cores(
            request.params["cid"], _body_field(request, "cores", float)
        )
        return {"ok": True}

    def _scale(self, request: Request):
        api = self._api(request.params["app"])
        containers = api.scale_to(
            _body_field(request, "count", int),
            _body_field(request, "cores", float, default=1.0),
            gpu=bool(request.body.get("gpu", False)),
            role=str(request.body.get("role", "worker")),
        )
        return {"containers": [c.id for c in containers]}

    # ------------------------------------------------------------------
    # Event feed (control plane v1.1)
    # ------------------------------------------------------------------
    def _app_events(self, request: Request):
        cursor = _query_field(request, "cursor", int, default=0)
        limit = _query_field(request, "limit", int, default=None)
        page = self._ecovisor.events_for(
            request.params["app"], cursor=cursor, limit=limit
        )
        return {
            "app_name": page.app_name,
            "events": [event_to_dict(event) for event in page.events],
            "next_cursor": page.next_cursor,
            "dropped": page.dropped,
            # Feed-lifetime retention losses (as opposed to `dropped`,
            # this caller's cursor lag on this read).
            "journal_dropped": page.journal_dropped,
        }

    def _app_events_stream(self, request: Request):
        """Sync stub of the SSE stream route (served by the gateway).

        Kept on the in-process router so the route table (and `repro
        routes`) covers the full surface; validates the application so
        unknown apps answer 404 like every other app route.
        """
        self._ecovisor.events_for(request.params["app"], cursor=0, limit=0)
        return Response(
            501,
            {
                "error": "event streaming requires the async gateway; "
                "start one with `repro serve` and connect with "
                "Accept: text/event-stream"
            },
        )

    # ------------------------------------------------------------------
    # Observability surface (obs/)
    # ------------------------------------------------------------------
    def _get_metrics(self, request: Request):
        """The ecovisor's registry in Prometheus text exposition format."""
        return Response(
            200,
            self._ecovisor.metrics.render(),
            headers={"Content-Type": "text/plain; version=0.0.4; charset=utf-8"},
        )

    def _get_metrics_ticks(self, request: Request):
        """The tick profiler's ring buffer (``?last=N`` most recent)."""
        last = _query_field(request, "last", int, default=None)
        if last is not None and last < 0:
            raise ValueError(f"last must be >= 0, got {last}")
        profiler = self._ecovisor.profiler
        if profiler is None:
            return {
                "enabled": False,
                "phases": [],
                "ring_size": 0,
                "ticks_recorded": 0,
                "returned": 0,
                "ticks": [],
                "slow_ticks_total": 0,
            }
        return profiler.ticks_payload(last=last)

    # ------------------------------------------------------------------
    # Admin namespace: dynamic application lifecycle
    # ------------------------------------------------------------------
    def _share_body(
        self, request: Request, current: Optional[ShareConfig]
    ) -> ShareConfig:
        """A ShareConfig from body fields, defaulting to ``current``'s."""
        base = current or ShareConfig()
        return ShareConfig(
            solar_fraction=_body_field(
                request, "solar_fraction", float, default=base.solar_fraction
            ),
            battery_fraction=_body_field(
                request, "battery_fraction", float, default=base.battery_fraction
            ),
            grid_power_w=_body_field(
                request, "grid_power_w", float, default=base.grid_power_w
            ),
        )

    def _admin_list_apps(self, request: Request):
        return {
            "apps": [
                {"name": name, **_share_to_dict(share)}
                for name, share in self._ecovisor.app_shares().items()
            ]
        }

    def _admin_get_app(self, request: Request):
        name = request.params["app"]
        share = self._ecovisor.share_for(name)
        pending = self._ecovisor.pending_share(name)
        return {
            "name": name,
            **_share_to_dict(share),
            "pending_share": _share_to_dict(pending) if pending else None,
        }

    def _admin_admit_app(self, request: Request):
        name = str(_body_field(request, "name", str))
        share = self._share_body(request, current=None)
        self._ecovisor.admit_app(name, share)
        return Response(201, {"name": name, **_share_to_dict(share)})

    def _admin_set_share(self, request: Request):
        name = request.params["app"]
        # Partial fields default from the *staged* share when one is
        # pending, so two PATCHes between tick boundaries compose
        # instead of the second silently reverting the first.
        current = self._ecovisor.pending_share(name) or self._ecovisor.share_for(
            name
        )
        share = self._share_body(request, current=current)
        self._ecovisor.set_share(name, share)
        return {
            "name": name,
            **_share_to_dict(share),
            # Rebalances take effect at the next tick boundary.
            "effective_at_tick": self._ecovisor.next_tick_index,
        }

    def _admin_evict_app(self, request: Request):
        name = request.params["app"]
        account = self._ecovisor.evict_app(name)
        return {"name": name, "account": _account_to_dict(account)}


def _no_store(handler):
    """Wrap a handler so its responses carry ``Cache-Control: no-store``.

    A handler that set its own ``Cache-Control`` wins; plain-dict
    returns are lifted into a 200 :class:`Response` to carry the header.
    """

    @functools.wraps(handler)
    def wrapped(request: Request):
        result = handler(request)
        if isinstance(result, Response):
            if result.header("Cache-Control") is not None:
                return result
            headers = dict(result.headers)
            headers["Cache-Control"] = NO_STORE_CACHE_CONTROL
            return Response(result.status, result.body, headers)
        return Response(
            200, result, {"Cache-Control": NO_STORE_CACHE_CONTROL}
        )

    return wrapped


def _share_to_dict(share: ShareConfig) -> Dict[str, float]:
    return {
        "solar_fraction": share.solar_fraction,
        "battery_fraction": share.battery_fraction,
        "grid_power_w": share.grid_power_w,
    }


def _account_to_dict(account: AppAccount) -> Dict[str, Any]:
    """JSON form of a (finalized) ledger account."""
    return {
        "app_name": account.app_name,
        "energy_wh": account.energy_wh,
        "solar_wh": account.solar_wh,
        "battery_wh": account.battery_wh,
        "grid_wh": account.grid_wh,
        "carbon_g": account.carbon_g,
        "cost_usd": account.cost_usd,
        "curtailed_wh": account.curtailed_wh,
        "unmet_wh": account.unmet_wh,
        "finalized": account.finalized,
        "settlements": len(account.settlements),
    }
