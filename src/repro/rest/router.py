"""REST-shaped request router.

The prototype "runs on an external server and exposes a REST API to
applications" (paper Section 4).  This module reproduces the API's shape
in-process: JSON-dict requests dispatched by (method, path) to handlers,
with path parameters, query strings, JSON bodies, and HTTP-like status
codes — without a network dependency, so the full surface is
unit-testable.

Dispatch semantics follow HTTP: an unknown path is ``404``; a known path
reached with the wrong method is ``405 Method Not Allowed`` carrying an
``Allow`` header that lists the methods the path does serve.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qsl

from repro.core.errors import (
    AuthorizationError,
    ConfigurationError,
    EcovisorError,
    UnknownApplicationError,
    UnknownContainerError,
)
from repro.obs.metrics import Counter, Histogram, MetricsRegistry

#: Request-latency buckets: in-process dispatch is microseconds, but a
#: handler walking a long series can reach milliseconds.
REQUEST_LATENCY_BUCKETS = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 1.0,
)

#: The ``route`` label for requests no route pattern matched (404s).
#: A fixed label instead of the raw path, so an attacker probing random
#: paths cannot inflate series cardinality.
UNMATCHED_ROUTE_LABEL = "unmatched"

Handler = Callable[["Request"], Any]

_PARAM_PATTERN = re.compile(r"\{(\w+)\}")


def _header_lookup(
    headers: Dict[str, str], name: str, default: Optional[str] = None
) -> Optional[str]:
    """Case-insensitive header lookup (HTTP header names have no case).

    Header dicts here hold a handful of entries at most, so a linear
    scan beats building a lowered copy per request.
    """
    folded = name.lower()
    for key, value in headers.items():
        if key.lower() == folded:
            return value
    return default


@dataclass(frozen=True)
class Request:
    """One API request.

    ``params`` are path parameters (``{app}``-style segments); ``query``
    holds the parsed query string (``?cursor=3``) with string values,
    last occurrence winning; ``headers`` carries request headers
    (``If-None-Match`` and friends), looked up case-insensitively via
    :meth:`header`.
    """

    method: str
    path: str
    params: Dict[str, str] = field(default_factory=dict)
    body: Dict[str, Any] = field(default_factory=dict)
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """The named request header, case-insensitively."""
        return _header_lookup(self.headers, name, default)


@dataclass(frozen=True)
class Response:
    """One API response with an HTTP-like status code and headers."""

    status: int
    body: Any = None
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def is_redirect(self) -> bool:
        return 300 <= self.status < 400

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """The named response header, case-insensitively."""
        return _header_lookup(self.headers, name, default)

    @property
    def location(self) -> Optional[str]:
        """The ``Location`` header of a redirect response, if any."""
        return self.header("Location")

    @property
    def etag(self) -> Optional[str]:
        """The ``ETag`` header of a conditional-GET response, if any."""
        return self.header("ETag")


class Route:
    """A compiled route pattern like ``/apps/{app}/containers/{cid}``."""

    def __init__(self, method: str, pattern: str, handler: Handler):
        self.method = method.upper()
        self.pattern = pattern
        self.handler = handler
        regex = _PARAM_PATTERN.sub(r"(?P<\1>[^/]+)", pattern)
        self._regex = re.compile(f"^{regex}$")

    def match_path(self, path: str) -> Optional[Dict[str, str]]:
        """Path parameters if ``path`` matches the pattern (any method)."""
        found = self._regex.match(path)
        if found is None:
            return None
        return found.groupdict()

    def match(self, method: str, path: str) -> Optional[Dict[str, str]]:
        if method.upper() != self.method:
            return None
        return self.match_path(path)


class Router:
    """Dispatches requests to the first matching route."""

    def __init__(self):
        self._routes: List[Route] = []
        self._requests: Optional[Counter] = None
        self._latency: Optional[Histogram] = None

    def instrument(self, registry: MetricsRegistry) -> None:
        """Count and time every dispatch into ``registry``.

        Registers ``http_requests_total{route,status}`` and
        ``http_request_seconds{route}``.  *Every* dispatch is counted —
        including requests no handler saw: a 405 is labeled with the
        route pattern whose path matched (the method did not), and a
        404 with the fixed ``unmatched`` label, so probing traffic is
        visible without unbounded label cardinality.
        """
        self._requests = registry.counter(
            "http_requests_total",
            "API requests dispatched, by route pattern and status.",
            labelnames=("route", "status"),
        )
        self._latency = registry.histogram(
            "http_request_seconds",
            "In-process dispatch latency, by route pattern.",
            labelnames=("route",),
            buckets=REQUEST_LATENCY_BUCKETS,
        )

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        self._routes.append(Route(method, pattern, handler))

    def routes(self) -> List[Tuple[str, str]]:
        return [(r.method, r.pattern) for r in self._routes]

    def route_table(self) -> List[Tuple[str, str, str]]:
        """Every route as ``(method, pattern, backing_call)``.

        The backing call is the handler's name with any leading
        underscore stripped — the identifier the docs route table and
        the ``repro routes`` CLI subcommand print.
        """
        return [
            (r.method, r.pattern, getattr(r.handler, "__name__", "?").lstrip("_"))
            for r in self._routes
        ]

    def dispatch(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Response:
        """Route a request; maps library errors onto HTTP status codes.

        ``path`` may carry a query string (``/x?cursor=3``), parsed into
        ``Request.query``; ``headers`` become ``Request.headers``
        (conditional-GET validators ride here).  A handler may return a
        full :class:`Response` (redirects, custom statuses); any other
        return value becomes a 200 body.
        """
        requests = self._requests
        if requests is None:
            return self._dispatch(method, path, body, headers)[0]
        start = perf_counter()
        response, route_label = self._dispatch(method, path, body, headers)
        elapsed = perf_counter() - start
        requests.labels(route=route_label, status=str(response.status)).inc()
        self._latency.labels(route=route_label).observe(elapsed)
        return response

    def _dispatch(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[Response, str]:
        """Dispatch plus the route label the metrics should carry.

        The label is the matched route's *pattern* (not the concrete
        path), so cardinality is bounded by the route table; a 405
        carries the pattern whose path matched, a 404 the fixed
        ``unmatched`` label.
        """
        path, _, query_string = path.partition("?")
        query = dict(parse_qsl(query_string)) if query_string else {}
        method = method.upper()
        allowed: List[str] = []
        allowed_pattern: Optional[str] = None
        for route in self._routes:
            params = route.match_path(path)
            if params is None:
                continue
            if route.method != method:
                allowed.append(route.method)
                if allowed_pattern is None:
                    allowed_pattern = route.pattern
                continue
            request = Request(
                method=method,
                path=path,
                params=params,
                body=body or {},
                query=query,
                headers=headers or {},
            )
            try:
                result = route.handler(request)
            except (UnknownContainerError, UnknownApplicationError) as exc:
                return Response(404, {"error": str(exc)}), route.pattern
            except AuthorizationError as exc:
                return Response(403, {"error": str(exc)}), route.pattern
            except (ConfigurationError, ValueError) as exc:
                return Response(400, {"error": str(exc)}), route.pattern
            except EcovisorError as exc:
                return Response(500, {"error": str(exc)}), route.pattern
            if isinstance(result, Response):
                return result, route.pattern
            return Response(200, result), route.pattern
        if allowed:
            return (
                Response(
                    405,
                    {"error": f"method {method} not allowed for {path}"},
                    headers={"Allow": ", ".join(sorted(set(allowed)))},
                ),
                allowed_pattern or UNMATCHED_ROUTE_LABEL,
            )
        return (
            Response(404, {"error": f"no route for {method} {path}"}),
            UNMATCHED_ROUTE_LABEL,
        )
